#include "core/kernel.h"

#include "core/kernel_simd.h"
#include "datalog/parser.h"

namespace powerlog {

using datalog::ConstKind;
using datalog::InitKind;

const char* KernelOpName(KernelOp op) {
  switch (op) {
    case KernelOp::kGeneric: return "generic";
    case KernelOp::kConst: return "const";
    case KernelOp::kX: return "x";
    case KernelOp::kXPlusW: return "x+w";
    case KernelOp::kXPlusA: return "x+a";
    case KernelOp::kXTimesW: return "x*w";
    case KernelOp::kXTimesA: return "x*a";
    case KernelOp::kXOverDeg: return "x/deg";
    case KernelOp::kAXOverDeg: return "(a*x)/deg";
    case KernelOp::kXOverDegA: return "(x/deg)*a";
    case KernelOp::kAXW: return "(a*x)*w";
    case KernelOp::kAXWB: return "((a*x)*w)*b";
  }
  return "?";
}

EdgeKernelSpec SpecializeEdgeExpr(const datalog::CompiledExpr& expr) {
  using Op = datalog::CompiledExpr::OpCode;
  const auto& code = expr.code();
  const size_t n = code.size();
  EdgeKernelSpec spec;
  auto ret = [&](KernelOp op, double a = 0.0, double b = 0.0) {
    spec.op = op;
    spec.a = a;
    spec.b = b;
    return spec;
  };
  // `pair` accepts both push orders for commutative operators (IEEE add/mul
  // are commutative on values); `imm_of` extracts the constant of the pair.
  auto pair = [&](size_t i, Op p, Op q) {
    return (code[i].op == p && code[i + 1].op == q) ||
           (code[i].op == q && code[i + 1].op == p);
  };
  auto imm_of = [&](size_t i) {
    return code[i].op == Op::kPushConst ? code[i].imm : code[i + 1].imm;
  };

  if (n == 1) {
    if (code[0].op == Op::kPushConst) return ret(KernelOp::kConst, code[0].imm);
    if (code[0].op == Op::kPushX) return ret(KernelOp::kX);
  }
  if (n == 3) {
    if (code[2].op == Op::kAdd) {
      if (pair(0, Op::kPushX, Op::kPushW)) return ret(KernelOp::kXPlusW);
      if (pair(0, Op::kPushX, Op::kPushConst)) {
        return ret(KernelOp::kXPlusA, imm_of(0));
      }
    }
    if (code[2].op == Op::kMul) {
      if (pair(0, Op::kPushX, Op::kPushW)) return ret(KernelOp::kXTimesW);
      if (pair(0, Op::kPushX, Op::kPushConst)) {
        return ret(KernelOp::kXTimesA, imm_of(0));
      }
    }
    if (code[2].op == Op::kDiv && code[0].op == Op::kPushX &&
        code[1].op == Op::kPushDeg) {
      return ret(KernelOp::kXOverDeg);
    }
  }
  if (n == 5) {
    // (a*x)/deg — damped PageRank's 0.85*rx/d.
    if (code[2].op == Op::kMul && code[3].op == Op::kPushDeg &&
        code[4].op == Op::kDiv && pair(0, Op::kPushConst, Op::kPushX)) {
      return ret(KernelOp::kAXOverDeg, imm_of(0));
    }
    // (x/deg)*a.
    if (code[0].op == Op::kPushX && code[1].op == Op::kPushDeg &&
        code[2].op == Op::kDiv && code[3].op == Op::kPushConst &&
        code[4].op == Op::kMul) {
      return ret(KernelOp::kXOverDegA, code[3].imm);
    }
    // (a*x)*w.
    if (code[2].op == Op::kMul && code[3].op == Op::kPushW &&
        code[4].op == Op::kMul && pair(0, Op::kPushConst, Op::kPushX)) {
      return ret(KernelOp::kAXW, imm_of(0));
    }
  }
  if (n == 7) {
    // ((a*x)*w)*b — adsorption's 0.7*a*w*p with p const-folded.
    if (code[2].op == Op::kMul && code[3].op == Op::kPushW &&
        code[4].op == Op::kMul && code[5].op == Op::kPushConst &&
        code[6].op == Op::kMul && pair(0, Op::kPushConst, Op::kPushX)) {
      return ret(KernelOp::kAXWB, imm_of(0), code[5].imm);
    }
  }
  return spec;  // kGeneric
}

Result<Kernel> BuildKernel(const datalog::AnalyzedProgram& program) {
  Kernel kernel;
  kernel.name = program.name;
  kernel.agg = program.aggregate;
  kernel.uses_weights = !program.edge_fn.weight_var.empty();
  kernel.uses_degree = !program.edge_fn.degree_var.empty();
  kernel.uses_in_edges = program.uses_in_edges;
  kernel.constant = program.constant;
  kernel.init = program.init;
  kernel.termination = program.termination;

  datalog::CompileEnv env;
  env.input_var = program.edge_fn.input_var;
  env.weight_var = program.edge_fn.weight_var;
  env.degree_var = program.edge_fn.degree_var;
  env.const_bindings = program.edge_fn.const_bindings;
  auto compiled = datalog::CompileExpr(program.edge_fn.expr, env);
  if (!compiled.ok()) return compiled.status();
  kernel.edge_fn = std::move(compiled).ValueOrDie();
  kernel.scatter = SpecializeEdgeExpr(kernel.edge_fn);
  // Runtime SIMD dispatch: bake the span form of F' in here so every
  // consumer of a built kernel (engine workers, benches) agrees on the
  // selected level. --no-simd downgrades per run by ignoring this pointer.
  if (kernel.scatter.specialized()) {
    kernel.scatter_span = simd::SelectSpanFn(simd::ActiveLevel());
  }

  // Ensure the aggregate is executable (mean is checker-only).
  Aggregator agg(kernel.agg);
  if (kernel.agg != AggKind::kMean) {
    auto id = agg.Identity();
    if (!id.ok()) return id.status();
  }
  return kernel;
}

Result<Kernel> BuildKernelFromSource(const std::string& source) {
  auto parsed = datalog::Parse(source);
  if (!parsed.ok()) return parsed.status();
  auto analyzed = datalog::Analyze(*parsed);
  if (!analyzed.ok()) return analyzed.status();
  return BuildKernel(*analyzed);
}

Result<std::vector<double>> ComputeX0(const Kernel& kernel, VertexId num_vertices) {
  Aggregator agg(kernel.agg);
  auto id = agg.Identity();
  if (!id.ok()) return id.status();
  std::vector<double> x0(num_vertices, *id);
  switch (kernel.init.kind) {
    case InitKind::kNone:
      break;
    case InitKind::kAllVerticesConst:
      std::fill(x0.begin(), x0.end(), kernel.init.value);
      break;
    case InitKind::kAllVerticesOwnId:
      for (VertexId v = 0; v < num_vertices; ++v) x0[v] = static_cast<double>(v);
      break;
    case InitKind::kSingleSource:
      if (kernel.init.source >= num_vertices) {
        return Status::OutOfRange("init source vertex out of range");
      }
      x0[kernel.init.source] = kernel.init.value;
      break;
  }
  return x0;
}

Result<MraInitialState> ComputeInitialState(const Kernel& kernel, const Graph& graph) {
  const VertexId n = graph.num_vertices();
  auto x0r = ComputeX0(kernel, n);
  if (!x0r.ok()) return x0r.status();
  MraInitialState state;
  state.x0 = std::move(x0r).ValueOrDie();

  Aggregator agg(kernel.agg);
  auto idr = agg.Identity();
  if (!idr.ok()) return idr.status();
  const double identity = *idr;

  if (kernel.agg == AggKind::kMin || kernel.agg == AggKind::kMax) {
    // G⁻ = G itself and ΔX¹ = X¹ (§3.3, "For SSSP, we get ΔX¹ = X¹"):
    // compute X¹ = G∘F(X⁰) by one propagation round. Starting the delta
    // column at X¹ lets the runtime gate every later delta on strict
    // improvement, which is what makes fixpoint detection exact.
    Aggregator agg(kernel.agg);
    state.delta0.assign(n, identity);
    auto fold = [&](VertexId v, double value) {
      state.delta0[v] = state.delta0[v] == identity
                            ? value
                            : *agg.Combine(state.delta0[v], value);
    };
    // Non-recursive bodies of F: re-derived init facts and the constant part.
    if (!kernel.init.iteration_indexed) {
      for (VertexId v = 0; v < n; ++v) {
        if (state.x0[v] != identity) fold(v, state.x0[v]);
      }
    }
    if (kernel.constant.kind == ConstKind::kAllVertices) {
      for (VertexId v = 0; v < n; ++v) fold(v, kernel.constant.value);
    } else if (kernel.constant.kind == ConstKind::kSingleKey) {
      if (kernel.constant.key >= n) {
        return Status::OutOfRange("constant-part key out of range");
      }
      fold(kernel.constant.key, kernel.constant.value);
    }
    const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;
    for (VertexId src = 0; src < n; ++src) {
      const double x = state.x0[src];
      if (x == identity) continue;
      const double deg = static_cast<double>(graph.OutDegree(src));
      for (const Edge& e : prop.OutEdges(src)) {
        fold(e.dst, kernel.EvalEdge(x, e.weight, deg));
      }
    }
    return state;
  }

  // sum/count: ΔX¹ = X¹ - X⁰ where X¹ = G∘F(X⁰) = Σ_in F'(x⁰) + C.
  state.delta0.assign(n, 0.0);
  bool x0_all_zero = true;
  for (double v : state.x0) {
    if (v != 0.0 && v != identity) {
      x0_all_zero = false;
      break;
    }
  }
  if (!x0_all_zero) {
    // One propagation round of F' over X⁰.
    const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;
    for (VertexId src = 0; src < n; ++src) {
      const double x = state.x0[src];
      if (x == identity || x == 0.0) continue;
      // degree() always refers to the original out-degree (its defining rule
      // counts edge(X, Y) tuples), even when propagation runs on the reverse.
      const double deg = static_cast<double>(graph.OutDegree(src));
      for (const Edge& e : prop.OutEdges(src)) {
        state.delta0[e.dst] += kernel.EvalEdge(x, e.weight, deg);
      }
    }
    // ΔX¹ = X¹ - X⁰ with X¹ = Σ_in F'(x⁰) + C [+ re-derived init facts].
    // A non-iteration-indexed init rule is part of F's non-recursive bodies
    // and re-derives the X⁰ facts every iteration, cancelling the
    // subtraction; only an iteration-indexed init (rank(0,X,r)) leaves a
    // genuine -X⁰ term.
    if (kernel.init.iteration_indexed) {
      for (VertexId v = 0; v < n; ++v) state.delta0[v] -= state.x0[v];
    }
  }
  switch (kernel.constant.kind) {
    case ConstKind::kNone:
      break;
    case ConstKind::kAllVertices:
      for (VertexId v = 0; v < n; ++v) state.delta0[v] += kernel.constant.value;
      break;
    case ConstKind::kSingleKey:
      if (kernel.constant.key >= n) {
        return Status::OutOfRange("constant-part key out of range");
      }
      state.delta0[kernel.constant.key] += kernel.constant.value;
      break;
  }
  // Normalise X⁰ for sum: the accumulated column starts from the initial
  // values themselves (identity == 0 for sum, so nothing else to do).
  return state;
}

}  // namespace powerlog
