#include "core/kernel.h"

#include "datalog/parser.h"

namespace powerlog {

using datalog::ConstKind;
using datalog::InitKind;

Result<Kernel> BuildKernel(const datalog::AnalyzedProgram& program) {
  Kernel kernel;
  kernel.name = program.name;
  kernel.agg = program.aggregate;
  kernel.uses_weights = !program.edge_fn.weight_var.empty();
  kernel.uses_degree = !program.edge_fn.degree_var.empty();
  kernel.uses_in_edges = program.uses_in_edges;
  kernel.constant = program.constant;
  kernel.init = program.init;
  kernel.termination = program.termination;

  datalog::CompileEnv env;
  env.input_var = program.edge_fn.input_var;
  env.weight_var = program.edge_fn.weight_var;
  env.degree_var = program.edge_fn.degree_var;
  env.const_bindings = program.edge_fn.const_bindings;
  auto compiled = datalog::CompileExpr(program.edge_fn.expr, env);
  if (!compiled.ok()) return compiled.status();
  kernel.edge_fn = std::move(compiled).ValueOrDie();

  // Ensure the aggregate is executable (mean is checker-only).
  Aggregator agg(kernel.agg);
  if (kernel.agg != AggKind::kMean) {
    auto id = agg.Identity();
    if (!id.ok()) return id.status();
  }
  return kernel;
}

Result<Kernel> BuildKernelFromSource(const std::string& source) {
  auto parsed = datalog::Parse(source);
  if (!parsed.ok()) return parsed.status();
  auto analyzed = datalog::Analyze(*parsed);
  if (!analyzed.ok()) return analyzed.status();
  return BuildKernel(*analyzed);
}

Result<std::vector<double>> ComputeX0(const Kernel& kernel, VertexId num_vertices) {
  Aggregator agg(kernel.agg);
  auto id = agg.Identity();
  if (!id.ok()) return id.status();
  std::vector<double> x0(num_vertices, *id);
  switch (kernel.init.kind) {
    case InitKind::kNone:
      break;
    case InitKind::kAllVerticesConst:
      std::fill(x0.begin(), x0.end(), kernel.init.value);
      break;
    case InitKind::kAllVerticesOwnId:
      for (VertexId v = 0; v < num_vertices; ++v) x0[v] = static_cast<double>(v);
      break;
    case InitKind::kSingleSource:
      if (kernel.init.source >= num_vertices) {
        return Status::OutOfRange("init source vertex out of range");
      }
      x0[kernel.init.source] = kernel.init.value;
      break;
  }
  return x0;
}

Result<MraInitialState> ComputeInitialState(const Kernel& kernel, const Graph& graph) {
  const VertexId n = graph.num_vertices();
  auto x0r = ComputeX0(kernel, n);
  if (!x0r.ok()) return x0r.status();
  MraInitialState state;
  state.x0 = std::move(x0r).ValueOrDie();

  Aggregator agg(kernel.agg);
  auto idr = agg.Identity();
  if (!idr.ok()) return idr.status();
  const double identity = *idr;

  if (kernel.agg == AggKind::kMin || kernel.agg == AggKind::kMax) {
    // G⁻ = G itself and ΔX¹ = X¹ (§3.3, "For SSSP, we get ΔX¹ = X¹"):
    // compute X¹ = G∘F(X⁰) by one propagation round. Starting the delta
    // column at X¹ lets the runtime gate every later delta on strict
    // improvement, which is what makes fixpoint detection exact.
    Aggregator agg(kernel.agg);
    state.delta0.assign(n, identity);
    auto fold = [&](VertexId v, double value) {
      state.delta0[v] = state.delta0[v] == identity
                            ? value
                            : *agg.Combine(state.delta0[v], value);
    };
    // Non-recursive bodies of F: re-derived init facts and the constant part.
    if (!kernel.init.iteration_indexed) {
      for (VertexId v = 0; v < n; ++v) {
        if (state.x0[v] != identity) fold(v, state.x0[v]);
      }
    }
    if (kernel.constant.kind == ConstKind::kAllVertices) {
      for (VertexId v = 0; v < n; ++v) fold(v, kernel.constant.value);
    } else if (kernel.constant.kind == ConstKind::kSingleKey) {
      if (kernel.constant.key >= n) {
        return Status::OutOfRange("constant-part key out of range");
      }
      fold(kernel.constant.key, kernel.constant.value);
    }
    const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;
    for (VertexId src = 0; src < n; ++src) {
      const double x = state.x0[src];
      if (x == identity) continue;
      const double deg = static_cast<double>(graph.OutDegree(src));
      for (const Edge& e : prop.OutEdges(src)) {
        fold(e.dst, kernel.EvalEdge(x, e.weight, deg));
      }
    }
    return state;
  }

  // sum/count: ΔX¹ = X¹ - X⁰ where X¹ = G∘F(X⁰) = Σ_in F'(x⁰) + C.
  state.delta0.assign(n, 0.0);
  bool x0_all_zero = true;
  for (double v : state.x0) {
    if (v != 0.0 && v != identity) {
      x0_all_zero = false;
      break;
    }
  }
  if (!x0_all_zero) {
    // One propagation round of F' over X⁰.
    const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;
    for (VertexId src = 0; src < n; ++src) {
      const double x = state.x0[src];
      if (x == identity || x == 0.0) continue;
      // degree() always refers to the original out-degree (its defining rule
      // counts edge(X, Y) tuples), even when propagation runs on the reverse.
      const double deg = static_cast<double>(graph.OutDegree(src));
      for (const Edge& e : prop.OutEdges(src)) {
        state.delta0[e.dst] += kernel.EvalEdge(x, e.weight, deg);
      }
    }
    // ΔX¹ = X¹ - X⁰ with X¹ = Σ_in F'(x⁰) + C [+ re-derived init facts].
    // A non-iteration-indexed init rule is part of F's non-recursive bodies
    // and re-derives the X⁰ facts every iteration, cancelling the
    // subtraction; only an iteration-indexed init (rank(0,X,r)) leaves a
    // genuine -X⁰ term.
    if (kernel.init.iteration_indexed) {
      for (VertexId v = 0; v < n; ++v) state.delta0[v] -= state.x0[v];
    }
  }
  switch (kernel.constant.kind) {
    case ConstKind::kNone:
      break;
    case ConstKind::kAllVertices:
      for (VertexId v = 0; v < n; ++v) state.delta0[v] += kernel.constant.value;
      break;
    case ConstKind::kSingleKey:
      if (kernel.constant.key >= n) {
        return Status::OutOfRange("constant-part key out of range");
      }
      state.delta0[kernel.constant.key] += kernel.constant.value;
      break;
  }
  // Normalise X⁰ for sum: the accumulated column starts from the initial
  // values themselves (identity == 0 for sum, so nothing else to do).
  return state;
}

}  // namespace powerlog
