// AVX2 implementations of the span kernels and the combine tile. This is
// the only translation unit compiled with -mavx2 (and -ffp-contract=off so
// no mul+add ever contracts to an FMA — the bit-exactness contract of
// kernel_simd.h) — everything here is reached exclusively through the
// runtime dispatch, which verified CPUID first.
//
// Lane layout: 4×double per __m256d. CSR spans are AoS (Edge = {u32 dst,
// pad, f64 weight}, 16 bytes), so weights sit at qword offsets 1,3,5,7 of a
// 4-edge block; two unaligned 32-byte loads + unpackhi + a cross-lane
// permute deinterleave them into natural order. The harvested source value
// and the folded constants are scalar broadcasts. Tails (n mod 4) delegate
// to the scalar reference, which is bit-identical by contract.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>

#include "core/kernel_simd.h"

namespace powerlog::simd {

namespace {

static_assert(sizeof(Edge) == 16, "AoS deinterleave assumes 16-byte edges");
static_assert(offsetof(Edge, weight) == 8,
              "AoS deinterleave assumes the weight in the upper qword");

/// Weights of edges[i..i+3] in natural order.
inline __m256d LoadWeights4(const Edge* edges) {
  const double* base = reinterpret_cast<const double*>(edges);
  const __m256d lo = _mm256_loadu_pd(base);      // [dst0, w0, dst1, w1]
  const __m256d hi = _mm256_loadu_pd(base + 4);  // [dst2, w2, dst3, w3]
  // unpackhi works per 128-bit lane: [w0, w2, w1, w3]; the permute restores
  // natural order.
  const __m256d mixed = _mm256_unpackhi_pd(lo, hi);
  return _mm256_permute4x64_pd(mixed, _MM_SHUFFLE(3, 1, 2, 0));
}

/// Runs `op` (a lane-wise __m256d -> __m256d map) over the span, two 4-edge
/// blocks per iteration so the deinterleave shuffles of one block pipeline
/// behind the other and the loop overhead is paid once per 8 edges. The op
/// is applied per 4-lane block in span order, so the per-lane arithmetic —
/// and therefore the bit pattern of every out[i] — is identical to the
/// unrolled form.
template <typename LaneOp>
inline size_t SpanLoop(const EdgeKernelSpec& spec, double x, double deg,
                       const Edge* edges, size_t n, double* out, LaneOp op) {
  size_t i = 0;
  // Peel one edge if the span starts on an odd 16-byte slot: the block
  // stride is 64 bytes, so a 16-mod-64 base would make BOTH 32-byte weight
  // loads straddle a cache line on EVERY iteration. One scalar head edge
  // (bit-identical by contract) pins the loads inside single lines forever.
  if (n >= 8 && (reinterpret_cast<uintptr_t>(edges) & 31) != 0) {
    out[0] = ApplyEdgeKernel(spec, x, edges[0].weight, deg);
    i = 1;
  }
  for (; i + 8 <= n; i += 8) {
    const __m256d w0 = LoadWeights4(edges + i);
    const __m256d w1 = LoadWeights4(edges + i + 4);
    _mm256_storeu_pd(out + i, op(w0));
    _mm256_storeu_pd(out + i + 4, op(w1));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, op(LoadWeights4(edges + i)));
  }
  return i;
}

}  // namespace

void ComputeSpanAvx2(const EdgeKernelSpec& spec, double x, double deg,
                     const Edge* edges, size_t n, double* out) {
  size_t i = 0;
  if (spec.uniform()) {
    // Trivially wide: one evaluation, broadcast store (kX, kConst, and the
    // other shapes that never read w).
    const double c = ApplyEdgeKernel(spec, x, 0.0, deg);
    const __m256d cv = _mm256_set1_pd(c);
    for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, cv);
    for (; i < n; ++i) out[i] = c;
    return;
  }
  switch (spec.op) {
    case KernelOp::kXPlusW: {
      const __m256d xv = _mm256_set1_pd(x);
      i = SpanLoop(spec, x, deg, edges, n, out,
                   [xv](__m256d w) { return _mm256_add_pd(xv, w); });
      break;
    }
    case KernelOp::kXTimesW: {
      const __m256d xv = _mm256_set1_pd(x);
      i = SpanLoop(spec, x, deg, edges, n, out,
                   [xv](__m256d w) { return _mm256_mul_pd(xv, w); });
      break;
    }
    case KernelOp::kAXW: {
      // (a*x) hoisted exactly as the scalar loop hoists it.
      const __m256d axv = _mm256_set1_pd(spec.a * x);
      i = SpanLoop(spec, x, deg, edges, n, out,
                   [axv](__m256d w) { return _mm256_mul_pd(axv, w); });
      break;
    }
    case KernelOp::kAXWB: {
      const __m256d axv = _mm256_set1_pd(spec.a * x);
      const __m256d bv = _mm256_set1_pd(spec.b);
      i = SpanLoop(spec, x, deg, edges, n, out, [axv, bv](__m256d w) {
        return _mm256_mul_pd(_mm256_mul_pd(axv, w), bv);
      });
      break;
    }
    default:
      break;  // kGeneric — precondition violation; scalar tail zero-fills.
  }
  if (i < n) ComputeSpanScalar(spec, x, deg, edges + i, n - i, out + i);
}

void CombineTileAvx2(AggKind kind, const double* vals, double* acc, size_t n,
                     uint64_t* dirty) {
  size_t i = 0;
  uint64_t marks = 0;
  switch (kind) {
    case AggKind::kMin:
      for (; i + 4 <= n; i += 4) {
        const __m256d a = _mm256_loadu_pd(acc + i);
        const __m256d v = _mm256_loadu_pd(vals + i);
        // Ordered-quiet strict compare = Aggregator::Improves for min: a
        // NaN candidate never improves, never marks. The blend keeps acc
        // bit-identical (±0.0 included) when the candidate does not win.
        const __m256d lt = _mm256_cmp_pd(v, a, _CMP_LT_OQ);
        _mm256_storeu_pd(acc + i, _mm256_blendv_pd(a, v, lt));
        marks |= static_cast<uint64_t>(_mm256_movemask_pd(lt)) << i;
      }
      break;
    case AggKind::kMax:
      for (; i + 4 <= n; i += 4) {
        const __m256d a = _mm256_loadu_pd(acc + i);
        const __m256d v = _mm256_loadu_pd(vals + i);
        const __m256d gt = _mm256_cmp_pd(v, a, _CMP_GT_OQ);
        _mm256_storeu_pd(acc + i, _mm256_blendv_pd(a, v, gt));
        marks |= static_cast<uint64_t>(_mm256_movemask_pd(gt)) << i;
      }
      break;
    default: {  // sum/count
      const __m256d zero = _mm256_setzero_pd();
      for (; i + 4 <= n; i += 4) {
        const __m256d a = _mm256_loadu_pd(acc + i);
        const __m256d v = _mm256_loadu_pd(vals + i);
        _mm256_storeu_pd(acc + i, _mm256_add_pd(a, v));
        // Unordered-quiet !=: NaN contributions mark (C's `v != 0.0` is
        // true for NaN), ±0.0 does not.
        const __m256d nz = _mm256_cmp_pd(v, zero, _CMP_NEQ_UQ);
        marks |= static_cast<uint64_t>(_mm256_movemask_pd(nz)) << i;
      }
      break;
    }
  }
  if (i < n) {
    uint64_t tail = 0;
    CombineTileScalar(kind, vals + i, acc + i, n - i, &tail);
    marks |= tail << i;
  }
  *dirty |= marks;
}

}  // namespace powerlog::simd

#endif  // x86
