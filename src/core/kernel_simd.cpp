// Runtime SIMD dispatch plus the scalar reference implementations.
//
// The scalar span/tile loops double as (a) the always-available fallback the
// dispatcher hands out on non-AVX2 hosts or under POWERLOG_SIMD=scalar and
// (b) the bit-equality oracle the vector paths are tested against. They are
// compiled with auto-vectorization disabled: in the engine the scalar path
// runs one edge at a time interleaved with routing decisions, so a
// compiler-vectorized "scalar" loop would measure a path the engine never
// executes and quietly deflate the BM_EdgeApplyVector speedup gate.
#include "core/kernel_simd.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace powerlog::simd {

namespace {

#if defined(__GNUC__) && !defined(__clang__)
#define POWERLOG_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define POWERLOG_NO_AUTOVEC
#endif

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

Level DetectCpuLevel() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports also verifies OS XSAVE state (XCR0 zmm bits) for
  // the AVX-512 predicates, so a kernel that masked zmm never dispatches it.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level ResolveLevel() {
  const Level cpu = DetectCpuLevel();
  const char* env = std::getenv("POWERLOG_SIMD");
  if (env != nullptr) {
    // An override clamps downward only — it never exceeds the CPU
    // capability; anything else (including "auto") falls through to the
    // probe.
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return cpu < Level::kAvx2 ? cpu : Level::kAvx2;
    }
  }
  return cpu;
}

Level ActiveLevel() {
  static const Level level = ResolveLevel();
  return level;
}

POWERLOG_NO_AUTOVEC
void ComputeSpanScalar(const EdgeKernelSpec& spec, double x, double deg,
                       const Edge* edges, size_t n, double* out) {
  // Uniform shapes (F' ignores w): one evaluation, broadcast store.
  if (spec.uniform()) {
    const double c = ApplyEdgeKernel(spec, x, 0.0, deg);
    for (size_t i = 0; i < n; ++i) out[i] = c;
    return;
  }
  switch (spec.op) {
    case KernelOp::kXPlusW:
      for (size_t i = 0; i < n; ++i) out[i] = x + edges[i].weight;
      break;
    case KernelOp::kXTimesW:
      for (size_t i = 0; i < n; ++i) out[i] = x * edges[i].weight;
      break;
    case KernelOp::kAXW: {
      // (a*x) is loop-invariant; hoisting preserves the association.
      const double ax = spec.a * x;
      for (size_t i = 0; i < n; ++i) out[i] = ax * edges[i].weight;
      break;
    }
    case KernelOp::kAXWB: {
      const double ax = spec.a * x;
      for (size_t i = 0; i < n; ++i) out[i] = (ax * edges[i].weight) * spec.b;
      break;
    }
    default:  // kGeneric — precondition violation; keep the output defined.
      for (size_t i = 0; i < n; ++i) out[i] = 0.0;
      break;
  }
}

POWERLOG_NO_AUTOVEC
void CombineTileScalar(AggKind kind, const double* vals, double* acc,
                       size_t n, uint64_t* dirty) {
  uint64_t marks = 0;
  switch (kind) {
    case AggKind::kMin:
      // Ordered compare: a NaN candidate never improves and never marks,
      // matching Aggregator::Improves and the AVX2 _CMP_LT_OQ path.
      for (size_t i = 0; i < n; ++i) {
        if (vals[i] < acc[i]) {
          acc[i] = vals[i];
          marks |= uint64_t{1} << i;
        }
      }
      break;
    case AggKind::kMax:
      for (size_t i = 0; i < n; ++i) {
        if (vals[i] > acc[i]) {
          acc[i] = vals[i];
          marks |= uint64_t{1} << i;
        }
      }
      break;
    default:  // sum/count: always fold; mark non-identity contributions.
      for (size_t i = 0; i < n; ++i) {
        acc[i] += vals[i];
        if (vals[i] != 0.0) marks |= uint64_t{1} << i;
      }
      break;
  }
  *dirty |= marks;
}

EdgeSpanFn SelectSpanFn(Level level) {
#if defined(__x86_64__) || defined(__i386__)
  const Level cpu = DetectCpuLevel();
  const Level chosen = level < cpu ? level : cpu;
  if (chosen == Level::kAvx512) return &ComputeSpanAvx512;
  if (chosen == Level::kAvx2) return &ComputeSpanAvx2;
#else
  (void)level;
#endif
  return &ComputeSpanScalar;
}

CombineTileFn SelectCombineTileFn(Level level) {
#if defined(__x86_64__) || defined(__i386__)
  const Level cpu = DetectCpuLevel();
  const Level chosen = level < cpu ? level : cpu;
  if (chosen == Level::kAvx512) return &CombineTileAvx512;
  if (chosen == Level::kAvx2) return &CombineTileAvx2;
#else
  (void)level;
#endif
  return &CombineTileScalar;
}

}  // namespace powerlog::simd
