#include "core/aggregates.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace powerlog {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Result<double> Aggregator::Identity() const {
  switch (kind_) {
    case AggKind::kMin:
      return kInf;
    case AggKind::kMax:
      return -kInf;
    case AggKind::kSum:
    case AggKind::kCount:
      return 0.0;
    case AggKind::kMean:
      return Status::NotSupported("mean has no identity element");
  }
  return Status::Internal("unknown aggregate");
}

Result<double> Aggregator::Combine(double a, double b) const {
  switch (kind_) {
    case AggKind::kMin:
      return std::min(a, b);
    case AggKind::kMax:
      return std::max(a, b);
    case AggKind::kSum:
    case AggKind::kCount:
      return a + b;
    case AggKind::kMean:
      return Status::NotSupported("mean is not a binary fold");
  }
  return Status::Internal("unknown aggregate");
}

Result<double> Aggregator::Inverse(double x_new, double x_old) const {
  switch (kind_) {
    case AggKind::kMin:
      return std::min(x_new, x_old);
    case AggKind::kMax:
      return std::max(x_new, x_old);
    case AggKind::kSum:
    case AggKind::kCount:
      return x_new - x_old;
    case AggKind::kMean:
      return Status::NotSupported("mean has no inverse");
  }
  return Status::Internal("unknown aggregate");
}

bool Aggregator::IsIdentity(double v) const {
  switch (kind_) {
    case AggKind::kMin:
      return v == kInf;
    case AggKind::kMax:
      return v == -kInf;
    case AggKind::kSum:
    case AggKind::kCount:
      return v == 0.0;
    case AggKind::kMean:
      return false;
  }
  return false;
}

bool Aggregator::Improves(double current, double candidate) const {
  switch (kind_) {
    case AggKind::kMin:
      return candidate < current;
    case AggKind::kMax:
      return candidate > current;
    case AggKind::kSum:
    case AggKind::kCount:
      return candidate != 0.0;
    case AggKind::kMean:
      return true;
  }
  return false;
}

Result<double> AggregateMultiset(AggKind kind, const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("aggregate of an empty multiset");
  }
  switch (kind) {
    case AggKind::kMin:
      return *std::min_element(values.begin(), values.end());
    case AggKind::kMax:
      return *std::max_element(values.begin(), values.end());
    case AggKind::kSum:
    case AggKind::kCount: {
      double acc = 0.0;
      for (double v : values) acc += v;
      return acc;
    }
    case AggKind::kMean: {
      double acc = 0.0;
      for (double v : values) acc += v;
      return acc / static_cast<double>(values.size());
    }
  }
  return Status::Internal("unknown aggregate");
}

void AtomicCombine(std::atomic<double>* slot, double value, AggKind kind) {
  double current = slot->load(std::memory_order_relaxed);
  while (true) {
    double combined;
    switch (kind) {
      case AggKind::kMin:
        if (value >= current) return;
        combined = value;
        break;
      case AggKind::kMax:
        if (value <= current) return;
        combined = value;
        break;
      case AggKind::kSum:
      case AggKind::kCount:
        combined = current + value;
        break;
      case AggKind::kMean:
      default:
        return;  // mean never reaches the incremental runtime
    }
    if (slot->compare_exchange_weak(current, combined, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double AtomicExchange(std::atomic<double>* slot, double replacement) {
  return slot->exchange(replacement, std::memory_order_acq_rel);
}

}  // namespace powerlog
