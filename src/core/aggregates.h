// Aggregate operators with identities, combination, inverses (G⁻), and
// atomic-combine primitives for the MonoTable (§2.3, §3.3).
#pragma once

#include <atomic>
#include <vector>

#include "common/result.h"
#include "datalog/ast.h"

namespace powerlog {

using datalog::AggKind;

/// \brief Value-level semantics of one aggregate operator.
///
/// min/max/sum/count form the commutative-associative family the runtime can
/// execute incrementally; count combines like sum over counts (the paper's
/// "return sum(r, count[d])" runtime semantics). mean exists only as the
/// negative control — it has no identity/inverse and is rejected by MRA.
class Aggregator {
 public:
  explicit Aggregator(AggKind kind) : kind_(kind) {}

  AggKind kind() const { return kind_; }

  /// Identity element: +inf (min), -inf (max), 0 (sum/count).
  /// Error for mean, which has no identity.
  Result<double> Identity() const;

  /// g(a, b). Error for mean (not expressible as a binary fold).
  Result<double> Combine(double a, double b) const;

  /// The inverse G⁻ used to derive ΔX¹ (§3.3): min/max -> itself,
  /// sum/count -> pairwise subtraction.
  Result<double> Inverse(double x_new, double x_old) const;

  /// True if combining `v` into any value is a no-op.
  bool IsIdentity(double v) const;

  /// For ordered aggregates: does `candidate` improve on `current`?
  /// (strictly smaller for min, strictly larger for max; always true for
  /// sum/count with nonzero candidate).
  bool Improves(double current, double candidate) const;

 private:
  AggKind kind_;
};

/// Aggregates a full multiset — the only way to evaluate `mean`, and the
/// reference semantics for naive evaluation. Error on empty input.
Result<double> AggregateMultiset(AggKind kind, const std::vector<double>& values);

/// Lock-free combine of `value` into `*slot` under aggregate `kind`
/// (CAS loop; relaxed ordering is sufficient because MonoTable readers
/// tolerate stale intermediates).
void AtomicCombine(std::atomic<double>* slot, double value, AggKind kind);

/// Atomically swaps in `replacement` and returns the previous value
/// (MonoTable steps 1+2 of Fig. 7).
double AtomicExchange(std::atomic<double>* slot, double replacement);

}  // namespace powerlog
