// MonoTable: the distributed mutable in-memory state table of §5.2 (Fig. 7).
//
// Each row holds an accumulated result x (the "Accumulation" column) and an
// intermediate aggregated delta g(Δx) (the "Intermediate" column). The
// three-step update protocol:
//   1. tmp = exchange(intermediate, identity)   // fetch + reset atomically
//   2. x   = g(x, tmp)                          // fold into accumulation
//   3. for each dependent row j: intermediate_j = g(intermediate_j, f(tmp))
// Steps 1+2 use an atomic exchange so a delta is never double-counted even
// while remote workers are concurrently combining into the same row (§5.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/aggregates.h"

namespace powerlog {

/// \brief One shard of the state table (rows = keys owned by a worker; for
/// single-node use, all keys).
class MonoTable {
 public:
  /// Creates a table of `num_rows` rows with both columns at the identity.
  /// Fails for aggregates without an identity (mean).
  static Result<MonoTable> Create(AggKind kind, size_t num_rows);

  AggKind agg_kind() const { return kind_; }
  size_t num_rows() const { return accumulation_.size(); }
  double identity() const { return identity_; }

  /// Bulk initialisation of the accumulation / intermediate columns.
  Status Initialize(const std::vector<double>& x0, const std::vector<double>& delta0);

  double accumulation(size_t row) const {
    return accumulation_[row].load(std::memory_order_relaxed);
  }
  double intermediate(size_t row) const {
    return intermediate_[row].load(std::memory_order_relaxed);
  }

  /// Steps 1+2 of the protocol: atomically removes and returns the pending
  /// delta (identity if none) and folds it into the accumulation.
  /// Returns the fetched delta.
  double HarvestDelta(size_t row);

  /// Step 3 receiver side: combines a computed contribution into the row's
  /// intermediate column. Safe from any thread.
  void CombineDelta(size_t row, double contribution) {
    AtomicCombine(&intermediate_[row], contribution, kind_);
  }

  /// True if the row has a pending delta that would change the accumulation
  /// (improvement for min/max, nonzero for sum/count).
  bool HasUsefulDelta(size_t row) const;

  /// Sum over |pending deltas| — the convergence metric for epsilon
  /// termination (∑|ΔX|, §3.1). For min/max returns the count of pending
  /// improving deltas instead (a fixpoint metric).
  double PendingDeltaMass() const;

  /// Copies the accumulation column (termination checks, result export).
  std::vector<double> SnapshotAccumulation() const;
  std::vector<double> SnapshotIntermediate() const;

  /// Restores both columns (checkpoint recovery).
  Status Restore(const std::vector<double>& x, const std::vector<double>& delta);

  /// Overwrites one row's columns (partial recovery of a worker's shard).
  void SetRow(size_t row, double x, double delta) {
    accumulation_[row].store(x, std::memory_order_relaxed);
    intermediate_[row].store(delta, std::memory_order_relaxed);
  }

  /// Fault injection: resets one row to the identity in both columns,
  /// emulating the loss of a crashed worker's in-memory shard.
  void WipeRow(size_t row) { SetRow(row, identity_, identity_); }

 private:
  MonoTable(AggKind kind, size_t num_rows, double identity);

  AggKind kind_;
  double identity_;
  std::vector<std::atomic<double>> accumulation_;
  std::vector<std::atomic<double>> intermediate_;
};

}  // namespace powerlog
