// MonoTable: the distributed mutable in-memory state table of §5.2 (Fig. 7).
//
// Each row holds an accumulated result x (the "Accumulation" column) and an
// intermediate aggregated delta g(Δx) (the "Intermediate" column). The
// three-step update protocol:
//   1. tmp = exchange(intermediate, identity)   // fetch + reset atomically
//   2. x   = g(x, tmp)                          // fold into accumulation
//   3. for each dependent row j: intermediate_j = g(intermediate_j, f(tmp))
// Steps 1+2 use an atomic exchange so a delta is never double-counted even
// while remote workers are concurrently combining into the same row (§5.2).
//
// Frontier (active set): when enabled, the table maintains a word-striped
// atomic dirty bitmap — one bit per row, set by every non-identity
// CombineDelta/SetRow and cleared by the owning worker's sweep — so
// near-convergence sweeps enumerate only rows with pending deltas instead
// of scanning the whole shard. Memory-ordering contract (see
// ARCHITECTURE.md, "Compute plane"):
//   * mark:  fetch_or(release) *after* the value combine, so a scanner that
//     observes the bit (acquire) also observes the combined value;
//   * clear: fetch_and(acq_rel) *before* the harvest exchange, so a combine
//     that lands after the harvester's value read re-raises the bit and the
//     row is rescanned — a set bit can be stale (row already harvested, a
//     cheap no-op revisit) but a pending delta is never hidden behind a
//     clear bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/numa_arena.h"
#include "common/result.h"
#include "core/aggregates.h"

namespace powerlog {

/// \brief One shard of the state table (rows = keys owned by a worker; for
/// single-node use, all keys).
class MonoTable {
 public:
  /// Creates a table of `num_rows` rows with both columns at the identity.
  /// Fails for aggregates without an identity (mean).
  static Result<MonoTable> Create(AggKind kind, size_t num_rows);

  AggKind agg_kind() const { return kind_; }
  size_t num_rows() const { return accumulation_.size(); }
  double identity() const { return identity_; }

  /// Bulk initialisation of the accumulation / intermediate columns.
  Status Initialize(const std::vector<double>& x0, const std::vector<double>& delta0);

  double accumulation(size_t row) const {
    return accumulation_[row].load(std::memory_order_relaxed);
  }
  double intermediate(size_t row) const {
    return intermediate_[row].load(std::memory_order_relaxed);
  }

  /// Steps 1+2 of the protocol: atomically removes and returns the pending
  /// delta (identity if none) and folds it into the accumulation.
  /// Returns the fetched delta.
  double HarvestDelta(size_t row);

  /// Step 3 receiver side: combines a computed contribution into the row's
  /// intermediate column. Safe from any thread. Marks the row dirty when the
  /// frontier is enabled and the contribution is not a no-op.
  void CombineDelta(size_t row, double contribution) {
    AtomicCombine(&intermediate_[row], contribution, kind_);
    if (frontier_on_ && contribution != identity_) MarkDirty(row);
  }

  /// True if the row has a pending delta that would change the accumulation
  /// (improvement for min/max, nonzero for sum/count).
  bool HasUsefulDelta(size_t row) const;

  /// Sum over |pending deltas| — the convergence metric for epsilon
  /// termination (∑|ΔX|, §3.1). For min/max returns the count of pending
  /// improving deltas instead (a fixpoint metric).
  double PendingDeltaMass() const;

  /// Copies the accumulation column (termination checks, result export).
  std::vector<double> SnapshotAccumulation() const;
  std::vector<double> SnapshotIntermediate() const;

  /// Restores both columns (checkpoint recovery).
  Status Restore(const std::vector<double>& x, const std::vector<double>& delta);

  /// Overwrites one row's columns (partial recovery of a worker's shard).
  /// Always re-marks the row dirty when the frontier is on: the new owner's
  /// sweep must revisit restored rows even when the restored delta happens
  /// to be the identity (the visit lazily clears the bit again).
  void SetRow(size_t row, double x, double delta) {
    accumulation_[row].store(x, std::memory_order_relaxed);
    intermediate_[row].store(delta, std::memory_order_relaxed);
    if (frontier_on_) MarkDirty(row);
  }

  /// Fault injection: resets one row to the identity in both columns,
  /// emulating the loss of a crashed worker's in-memory shard.
  void WipeRow(size_t row) { SetRow(row, identity_, identity_); }

  // --- Frontier (active-set) bitmap -------------------------------------

  /// Allocates (or drops) the dirty bitmap. Enabling rebuilds the bits from
  /// the current intermediate column, so it can be called after Initialize.
  void SetFrontierEnabled(bool on);
  bool frontier_enabled() const { return frontier_on_; }

  /// Relaxed single-bit peek — the dense sweep's cheap rejection (the word
  /// holding 64 rows is one cache line shared by 512 of them, vs 8 bytes
  /// per row for the intermediate column itself).
  bool IsDirty(size_t row) const {
    return (frontier_[row >> 6].load(std::memory_order_relaxed) >>
            (row & 63)) & 1;
  }

  /// Marks a row dirty (fetch_or, release — pairs with FrontierWord's
  /// acquire so the marked value is visible to the scanner).
  void MarkDirty(size_t row) {
    frontier_[row >> 6].fetch_or(uint64_t{1} << (row & 63),
                                 std::memory_order_release);
  }

  /// Clears a row's dirty bit. acq_rel: the acquire half orders the clear
  /// before the caller's subsequent harvest read, which is what makes a
  /// concurrent combine re-raise the bit instead of being lost.
  void ClearDirty(size_t row) {
    frontier_[row >> 6].fetch_and(~(uint64_t{1} << (row & 63)),
                                  std::memory_order_acq_rel);
  }

  /// One 64-row stripe of the bitmap (acquire), for sparse word scans.
  uint64_t FrontierWord(size_t word) const {
    return frontier_[word].load(std::memory_order_acquire);
  }
  size_t num_frontier_words() const { return frontier_.size(); }

  /// Clears the bitmap and re-marks every row whose intermediate column is
  /// not the identity (checkpoint restore, recovery, enable).
  void RebuildFrontier();

  /// Fraction of rows currently marked dirty (observability gauge).
  double FrontierOccupancy() const;

  // --- NUMA placement (numa_arena.h; best-effort, no-op on single node) --

  /// Binds each contiguous row range `ranges[i]` = [lo, hi) of both value
  /// columns and the covering frontier words to NUMA node `nodes[i]` — the
  /// placement for range-partitioned shards whose owner is pinned.
  void PlaceShards(const std::vector<std::pair<size_t, size_t>>& ranges,
                   const std::vector<int>& nodes);

  /// Interleaves both value columns and the frontier words across all
  /// nodes — the placement for hash-partitioned shards, where every node
  /// touches every page range.
  void PlaceInterleaved();

 private:
  MonoTable(AggKind kind, size_t num_rows, double identity);

  AggKind kind_;
  double identity_;
  bool frontier_on_ = false;
  // Hot columns live in the NUMA arena (anonymous mappings, hugepage-
  // advised, placeable per shard page range) rather than the heap.
  numa::ArenaArray<std::atomic<double>> accumulation_;
  numa::ArenaArray<std::atomic<double>> intermediate_;
  numa::ArenaArray<std::atomic<uint64_t>> frontier_;  ///< 1 bit per row; empty if off
};

}  // namespace powerlog
