// Kernel: the runnable form of an analyzed program — everything the
// evaluators and the distributed runtime need, with the edge function
// compiled to the expression VM.
#pragma once

#include <string>

#include "common/result.h"
#include "core/aggregates.h"
#include "datalog/analyzer.h"
#include "graph/graph.h"

namespace powerlog {

/// \brief Compiled recursive aggregate program.
struct Kernel {
  std::string name;
  AggKind agg = AggKind::kSum;
  datalog::CompiledExpr edge_fn;  ///< F' over (x, w, deg)
  bool uses_weights = false;
  bool uses_degree = false;
  bool uses_in_edges = false;  ///< propagate along reversed edges
  datalog::ConstSpec constant;
  datalog::InitSpec init;
  datalog::TerminationSpec termination;

  /// Applies F' to one contribution.
  double EvalEdge(double x, double w, double deg) const {
    return edge_fn.Eval(x, w, deg);
  }
};

/// Compiles an analyzed program into a kernel. Fails if the edge expression
/// references unbound symbols or the aggregate has no runtime identity.
Result<Kernel> BuildKernel(const datalog::AnalyzedProgram& program);

/// Convenience: parse + analyze + build from catalog-style source text.
Result<Kernel> BuildKernelFromSource(const std::string& source);

/// Per-vertex initial state of MRA evaluation (§3.3): the accumulated column
/// X⁰ and the first delta ΔX¹ with X¹ = G(ΔX¹ ∪ X⁰).
struct MraInitialState {
  std::vector<double> x0;
  std::vector<double> delta0;
};

/// Derives (X⁰, ΔX¹) for `kernel` on `graph` using the predefined inverse
/// aggregates G⁻ (min/max: min/max; sum/count: pairwise subtraction).
Result<MraInitialState> ComputeInitialState(const Kernel& kernel, const Graph& graph);

/// X⁰ alone (for the naive evaluator).
Result<std::vector<double>> ComputeX0(const Kernel& kernel, VertexId num_vertices);

}  // namespace powerlog
