// Kernel: the runnable form of an analyzed program — everything the
// evaluators and the distributed runtime need, with the edge function
// compiled to the expression VM.
#pragma once

#include <string>

#include "common/result.h"
#include "core/aggregates.h"
#include "datalog/analyzer.h"
#include "graph/graph.h"

namespace powerlog {

/// \brief Specialized edge-kernel shapes. BuildKernel pattern-matches the
/// compiled F' bytecode once; the worker's scatter loop then dispatches to a
/// fused loop per shape instead of paying the stack-VM switch per edge. The
/// ops mirror the *exact* association of the matched bytecode (e.g.
/// kAXOverDeg is (a*x)/deg, not a*(x/deg)), so specialized evaluation is
/// bit-identical to CompiledExpr::Eval. kGeneric falls back to the VM.
enum class KernelOp : uint8_t {
  kGeneric,    ///< unmatched — evaluate via the VM
  kConst,      ///< a
  kX,          ///< x                      (cc-style label propagation)
  kXPlusW,     ///< x + w                  (sssp)
  kXPlusA,     ///< x + a
  kXTimesW,    ///< x * w                  (viterbi-style products)
  kXTimesA,    ///< x * a                  (katz-style attenuation)
  kXOverDeg,   ///< x / deg
  kAXOverDeg,  ///< (a * x) / deg          (damped pagerank)
  kXOverDegA,  ///< (x / deg) * a
  kAXW,        ///< (a * x) * w
  kAXWB,       ///< ((a * x) * w) * b      (adsorption)
};

const char* KernelOpName(KernelOp op);

/// \brief Matched edge-kernel shape plus its folded constants.
struct EdgeKernelSpec {
  KernelOp op = KernelOp::kGeneric;
  double a = 0.0;
  double b = 0.0;

  bool specialized() const { return op != KernelOp::kGeneric; }
  /// True when F' under this shape does not read the edge weight, so the
  /// contribution is uniform across a vertex's whole edge range.
  bool uniform() const {
    return op != KernelOp::kGeneric && op != KernelOp::kXPlusW &&
           op != KernelOp::kXTimesW && op != KernelOp::kAXW &&
           op != KernelOp::kAXWB;
  }
};

/// Pattern-matches a compiled edge expression. Returns kGeneric when the
/// bytecode fits no known shape.
EdgeKernelSpec SpecializeEdgeExpr(const datalog::CompiledExpr& expr);

/// Scalar reference semantics of a specialized shape — must be bit-identical
/// to CompiledExpr::Eval on the matched bytecode (asserted by tests). The
/// worker inlines the same arithmetic in its fused scatter loops.
inline double ApplyEdgeKernel(const EdgeKernelSpec& spec, double x, double w,
                              double deg) {
  switch (spec.op) {
    case KernelOp::kConst: return spec.a;
    case KernelOp::kX: return x;
    case KernelOp::kXPlusW: return x + w;
    case KernelOp::kXPlusA: return x + spec.a;
    case KernelOp::kXTimesW: return x * w;
    case KernelOp::kXTimesA: return x * spec.a;
    case KernelOp::kXOverDeg: return x / deg;
    case KernelOp::kAXOverDeg: return (spec.a * x) / deg;
    case KernelOp::kXOverDegA: return (x / deg) * spec.a;
    case KernelOp::kAXW: return (spec.a * x) * w;
    case KernelOp::kAXWB: return ((spec.a * x) * w) * spec.b;
    case KernelOp::kGeneric: break;
  }
  return 0.0;  // kGeneric: caller must use the VM
}

/// Span form of F' for the vectorized scatter path (kernel_simd.h): fills
/// out[i] = F'(x, edges[i].weight, deg) over a whole CSR span, bit-exact
/// with ApplyEdgeKernel per element. BuildKernel resolves it through the
/// runtime SIMD dispatch (CPUID ∧ POWERLOG_SIMD); it is null only for
/// Kernel objects assembled by hand, and the worker then falls back to its
/// scalar loops.
using EdgeSpanFn = void (*)(const EdgeKernelSpec& spec, double x, double deg,
                            const Edge* edges, size_t n, double* out);

/// \brief Compiled recursive aggregate program.
struct Kernel {
  std::string name;
  AggKind agg = AggKind::kSum;
  datalog::CompiledExpr edge_fn;  ///< F' over (x, w, deg)
  EdgeKernelSpec scatter;         ///< specialized shape of edge_fn
  EdgeSpanFn scatter_span = nullptr;  ///< SIMD-dispatched span form of F'
  bool uses_weights = false;
  bool uses_degree = false;
  bool uses_in_edges = false;  ///< propagate along reversed edges
  datalog::ConstSpec constant;
  datalog::InitSpec init;
  datalog::TerminationSpec termination;

  /// Applies F' to one contribution.
  double EvalEdge(double x, double w, double deg) const {
    return edge_fn.Eval(x, w, deg);
  }
};

/// Compiles an analyzed program into a kernel. Fails if the edge expression
/// references unbound symbols or the aggregate has no runtime identity.
Result<Kernel> BuildKernel(const datalog::AnalyzedProgram& program);

/// Convenience: parse + analyze + build from catalog-style source text.
Result<Kernel> BuildKernelFromSource(const std::string& source);

/// Per-vertex initial state of MRA evaluation (§3.3): the accumulated column
/// X⁰ and the first delta ΔX¹ with X¹ = G(ΔX¹ ∪ X⁰).
struct MraInitialState {
  std::vector<double> x0;
  std::vector<double> delta0;
};

/// Derives (X⁰, ΔX¹) for `kernel` on `graph` using the predefined inverse
/// aggregates G⁻ (min/max: min/max; sum/count: pairwise subtraction).
Result<MraInitialState> ComputeInitialState(const Kernel& kernel, const Graph& graph);

/// X⁰ alone (for the naive evaluator).
Result<std::vector<double>> ComputeX0(const Kernel& kernel, VertexId num_vertices);

}  // namespace powerlog
