// AVX-512 implementations of the span kernels and the combine tile. This is
// the only translation unit compiled with -mavx512f/-mavx512vl (and
// -ffp-contract=off so no mul+add ever contracts to an FMA — the
// bit-exactness contract of kernel_simd.h) — everything here is reached
// exclusively through the runtime dispatch, which verified CPUID (and the
// OS XSAVE zmm state) first.
//
// Lane layout: 8×double per __m512d. One 64-byte load covers a whole 4-edge
// AoS block ([dst0, w0, dst1, w1, dst2, w2, dst3, w3] as qwords), so a
// single vpermt2pd over two consecutive blocks deinterleaves all 8 weights
// in one cross-lane shuffle — the move that pays for this level: the AVX2
// path needs a shuffle pair per 4 edges and saturates the shuffle port at
// ~1.4 cycles/block, while this loop spends one shuffle per 8 edges. The
// combine tile gets its dirty mask straight from the compare mask register
// (no movemask) and uses masked stores so losing lanes are never written.
// Tails (n mod 8) delegate to the scalar reference, bit-identical by
// contract.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>

#include "core/kernel_simd.h"

namespace powerlog::simd {

namespace {

static_assert(sizeof(Edge) == 16, "AoS deinterleave assumes 16-byte edges");
static_assert(offsetof(Edge, weight) == 8,
              "AoS deinterleave assumes the weight in the upper qword");

/// Weights of edges[i..i+7] in natural order: the odd qwords of two
/// consecutive 64-byte blocks, merged by one two-source permute.
inline __m512d LoadWeights8(const Edge* edges) {
  const double* base = reinterpret_cast<const double*>(edges);
  const __m512d lo = _mm512_loadu_pd(base);      // edges 0..3
  const __m512d hi = _mm512_loadu_pd(base + 8);  // edges 4..7
  const __m512i idx = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
  return _mm512_permutex2var_pd(lo, idx, hi);
}

/// Runs `op` (a lane-wise __m512d -> __m512d map) over the span, 8 edges
/// per iteration. The op is applied per 8-lane block in span order, so the
/// per-lane arithmetic — and therefore the bit pattern of every out[i] — is
/// identical to the scalar loop.
template <typename LaneOp>
inline size_t SpanLoop(const EdgeKernelSpec& spec, double x, double deg,
                       const Edge* edges, size_t n, double* out, LaneOp op) {
  size_t i = 0;
  // Peel to a 64-byte edge base when a few scalar head edges can get there:
  // the block stride is 128 bytes, so a misaligned base makes BOTH 64-byte
  // weight loads straddle a cache line on EVERY iteration. The scalar head
  // is bit-identical by contract.
  const uintptr_t addr = reinterpret_cast<uintptr_t>(edges);
  if (n >= 16 && (addr & 15) == 0 && (addr & 63) != 0) {
    const size_t peel = (64 - (addr & 63)) / sizeof(Edge);
    ComputeSpanScalar(spec, x, deg, edges, peel, out);
    i = peel;
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i, op(LoadWeights8(edges + i)));
  }
  return i;
}

}  // namespace

void ComputeSpanAvx512(const EdgeKernelSpec& spec, double x, double deg,
                       const Edge* edges, size_t n, double* out) {
  size_t i = 0;
  if (spec.uniform()) {
    // Trivially wide: one evaluation, broadcast store (kX, kConst, and the
    // other shapes that never read w).
    const double c = ApplyEdgeKernel(spec, x, 0.0, deg);
    const __m512d cv = _mm512_set1_pd(c);
    for (; i + 8 <= n; i += 8) _mm512_storeu_pd(out + i, cv);
    for (; i < n; ++i) out[i] = c;
    return;
  }
  switch (spec.op) {
    case KernelOp::kXPlusW: {
      const __m512d xv = _mm512_set1_pd(x);
      i = SpanLoop(spec, x, deg, edges, n, out,
                   [xv](__m512d w) { return _mm512_add_pd(xv, w); });
      break;
    }
    case KernelOp::kXTimesW: {
      const __m512d xv = _mm512_set1_pd(x);
      i = SpanLoop(spec, x, deg, edges, n, out,
                   [xv](__m512d w) { return _mm512_mul_pd(xv, w); });
      break;
    }
    case KernelOp::kAXW: {
      // (a*x) hoisted exactly as the scalar loop hoists it.
      const __m512d axv = _mm512_set1_pd(spec.a * x);
      i = SpanLoop(spec, x, deg, edges, n, out,
                   [axv](__m512d w) { return _mm512_mul_pd(axv, w); });
      break;
    }
    case KernelOp::kAXWB: {
      const __m512d axv = _mm512_set1_pd(spec.a * x);
      const __m512d bv = _mm512_set1_pd(spec.b);
      i = SpanLoop(spec, x, deg, edges, n, out, [axv, bv](__m512d w) {
        return _mm512_mul_pd(_mm512_mul_pd(axv, w), bv);
      });
      break;
    }
    default:
      break;  // kGeneric — precondition violation; scalar tail zero-fills.
  }
  if (i < n) ComputeSpanScalar(spec, x, deg, edges + i, n - i, out + i);
}

void CombineTileAvx512(AggKind kind, const double* vals, double* acc,
                       size_t n, uint64_t* dirty) {
  size_t i = 0;
  uint64_t marks = 0;
  switch (kind) {
    case AggKind::kMin:
      for (; i + 8 <= n; i += 8) {
        const __m512d a = _mm512_loadu_pd(acc + i);
        const __m512d v = _mm512_loadu_pd(vals + i);
        // Ordered-quiet strict compare = Aggregator::Improves for min: a
        // NaN candidate never improves, never marks. The masked store only
        // touches winning lanes, so acc stays bit-identical (±0.0
        // included) when the candidate does not win.
        const __mmask8 lt = _mm512_cmp_pd_mask(v, a, _CMP_LT_OQ);
        _mm512_mask_storeu_pd(acc + i, lt, v);
        marks |= static_cast<uint64_t>(lt) << i;
      }
      break;
    case AggKind::kMax:
      for (; i + 8 <= n; i += 8) {
        const __m512d a = _mm512_loadu_pd(acc + i);
        const __m512d v = _mm512_loadu_pd(vals + i);
        const __mmask8 gt = _mm512_cmp_pd_mask(v, a, _CMP_GT_OQ);
        _mm512_mask_storeu_pd(acc + i, gt, v);
        marks |= static_cast<uint64_t>(gt) << i;
      }
      break;
    default: {  // sum/count
      const __m512d zero = _mm512_setzero_pd();
      for (; i + 8 <= n; i += 8) {
        const __m512d a = _mm512_loadu_pd(acc + i);
        const __m512d v = _mm512_loadu_pd(vals + i);
        _mm512_storeu_pd(acc + i, _mm512_add_pd(a, v));
        // Unordered-quiet !=: NaN contributions mark (C's `v != 0.0` is
        // true for NaN), ±0.0 does not.
        const __mmask8 nz = _mm512_cmp_pd_mask(v, zero, _CMP_NEQ_UQ);
        marks |= static_cast<uint64_t>(nz) << i;
      }
      break;
    }
  }
  if (i < n) {
    uint64_t tail = 0;
    CombineTileScalar(kind, vals + i, acc + i, n - i, &tail);
    marks |= tail << i;
  }
  *dirty |= marks;
}

}  // namespace powerlog::simd

#endif  // x86
