// SIMD compute-plane primitives (ROADMAP item 4): vectorized span kernels
// for the specialized KernelOp shapes and a dense combine tile whose
// movemask drives frontier dirty-bit marking, behind a runtime CPUID
// dispatch with the scalar loops as the always-available fallback.
//
// Bit-exactness contract: every vector implementation is lane-wise
// bit-identical to its scalar reference on every input, including ±inf
// sentinel distances, NaN contributions, and the aggregate identities.
// This holds because (a) the span kernels use only per-lane add/mul/div in
// the *exact association* of ApplyEdgeKernel — FMA contraction is disabled
// on the AVX2 translation unit (`-ffp-contract=off`), so no shape needs an
// ε-tolerance — and (b) the min/max combine uses an ordered-quiet compare
// plus blend (`val < acc ? val : acc`), which matches Aggregator::Improves
// exactly (a NaN candidate never improves and never marks).
//
// One carve-out: when a lane's result is NaN, only NaN-ness is guaranteed,
// not the payload or sign bit. IEEE 754 leaves the choice of which NaN a
// multi-NaN operation returns to the implementation (x86 mul/add return the
// *first* operand's NaN quieted), and the compiler is free to schedule the
// scalar expression's operands in a different order than the intrinsics
// spell — e.g. (0·inf)·NaN can surface the real-indefinite −NaN on one side
// and the propagated quiet +NaN on the other. This never affects the
// engine: NaN is absorbed by the min/max combine (never improves) and
// condition-checked programs keep NaN out of sum/count columns.
//
// Dirty-marking contract of the combine tile: bit i of *dirty is OR-ed in
// when slot i's combine *changed the column* — a strict improvement for
// min/max (tighter than CombineDelta's any-non-identity rule, and safe for
// the same reason the frontier may skip identity deltas: a non-improving
// contribution leaves the column unchanged, so there is nothing to sweep),
// a non-identity (nonzero) contribution for sum/count.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/aggregates.h"
#include "core/kernel.h"
#include "graph/graph.h"

namespace powerlog::simd {

/// \brief Instruction-set level the dispatcher can select. Ordered by
/// capability: a level never exceeds what the CPU (and OS XSAVE state)
/// supports, and an env override clamps downward only.
enum class Level : uint8_t {
  kScalar = 0,  ///< portable reference loops (always available)
  kAvx2 = 1,    ///< 4×double AVX2 lanes (x86-64 with AVX2)
  kAvx512 = 2,  ///< 8×double zmm lanes (x86-64 with AVX-512 F+VL)
};

const char* LevelName(Level level);

/// Raw CPU capability (CPUID probe; kScalar on non-x86 builds).
Level DetectCpuLevel();

/// CPU capability ∧ the `POWERLOG_SIMD` override ("scalar" forces the
/// fallback, "avx2"/"avx512" request that level — silently clamped to the
/// CPU capability — anything else / unset means "auto").
Level ResolveLevel();

/// Process-wide cached ResolveLevel(): the level BuildKernel bakes into
/// Kernel::scatter_span. Resolved once; tests that flip POWERLOG_SIMD must
/// call ResolveLevel() directly.
Level ActiveLevel();

/// Span kernel: out[i] = F'(x, edges[i].weight, deg) for i in [0, n) under
/// `spec`, reading weights straight out of the AoS CSR span. Defined for
/// every specialized shape (spec.specialized()); uniform shapes broadcast
/// the single contribution. Callers must not pass kGeneric (the stack VM
/// owns that path).
void ComputeSpanScalar(const EdgeKernelSpec& spec, double x, double deg,
                       const Edge* edges, size_t n, double* out);
#if defined(__x86_64__) || defined(__i386__)
void ComputeSpanAvx2(const EdgeKernelSpec& spec, double x, double deg,
                     const Edge* edges, size_t n, double* out);
void ComputeSpanAvx512(const EdgeKernelSpec& spec, double x, double deg,
                       const Edge* edges, size_t n, double* out);
#endif

/// Returns the span kernel for `level` (clamped to availability).
EdgeSpanFn SelectSpanFn(Level level);

/// Dense combine tile: acc[i] = g(acc[i], vals[i]) for i in [0, n), n ≤ 64,
/// OR-ing bit i into *dirty per the marking contract above. `kind` must
/// have a runtime identity (min/max/sum/count). The tile is the
/// dense-segment primitive: single-writer slots (plain doubles), e.g. a
/// worker-private accumulation tile or a combining-buffer segment — the
/// MonoTable's shared rows keep the atomic CAS path.
using CombineTileFn = void (*)(AggKind kind, const double* vals, double* acc,
                               size_t n, uint64_t* dirty);

void CombineTileScalar(AggKind kind, const double* vals, double* acc,
                       size_t n, uint64_t* dirty);
#if defined(__x86_64__) || defined(__i386__)
void CombineTileAvx2(AggKind kind, const double* vals, double* acc,
                     size_t n, uint64_t* dirty);
void CombineTileAvx512(AggKind kind, const double* vals, double* acc,
                       size_t n, uint64_t* dirty);
#endif

/// Returns the combine tile for `level` (clamped to availability).
CombineTileFn SelectCombineTileFn(Level level);

}  // namespace powerlog::simd
