#include "core/mono_table.h"

#include <cmath>

namespace powerlog {

MonoTable::MonoTable(AggKind kind, size_t num_rows, double identity)
    : kind_(kind),
      identity_(identity),
      accumulation_(num_rows),
      intermediate_(num_rows) {
  for (size_t i = 0; i < num_rows; ++i) {
    accumulation_[i].store(identity, std::memory_order_relaxed);
    intermediate_[i].store(identity, std::memory_order_relaxed);
  }
}

Result<MonoTable> MonoTable::Create(AggKind kind, size_t num_rows) {
  Aggregator agg(kind);
  auto identity = agg.Identity();
  if (!identity.ok()) return identity.status();
  return MonoTable(kind, num_rows, *identity);
}

Status MonoTable::Initialize(const std::vector<double>& x0,
                             const std::vector<double>& delta0) {
  if (x0.size() != num_rows() || delta0.size() != num_rows()) {
    return Status::InvalidArgument("MonoTable::Initialize: size mismatch");
  }
  for (size_t i = 0; i < num_rows(); ++i) {
    accumulation_[i].store(x0[i], std::memory_order_relaxed);
    intermediate_[i].store(delta0[i], std::memory_order_relaxed);
  }
  if (frontier_on_) RebuildFrontier();
  return Status::OK();
}

void MonoTable::SetFrontierEnabled(bool on) {
  frontier_on_ = on;
  if (!on) {
    frontier_ = numa::ArenaArray<std::atomic<uint64_t>>();
    return;
  }
  frontier_ = numa::ArenaArray<std::atomic<uint64_t>>((num_rows() + 63) / 64);
  RebuildFrontier();
}

void MonoTable::PlaceShards(
    const std::vector<std::pair<size_t, size_t>>& ranges,
    const std::vector<int>& nodes) {
  for (size_t i = 0; i < ranges.size() && i < nodes.size(); ++i) {
    const auto [lo, hi] = ranges[i];
    if (hi <= lo || hi > num_rows()) continue;
    const size_t bytes = (hi - lo) * sizeof(std::atomic<double>);
    numa::BindPreferred(accumulation_.data() + lo, bytes, nodes[i]);
    numa::BindPreferred(intermediate_.data() + lo, bytes, nodes[i]);
    if (!frontier_.empty()) {
      const size_t wlo = lo >> 6;
      const size_t whi = ((hi + 63) >> 6);
      numa::BindPreferred(frontier_.data() + wlo,
                          (whi - wlo) * sizeof(std::atomic<uint64_t>),
                          nodes[i]);
    }
  }
}

void MonoTable::PlaceInterleaved() {
  numa::Interleave(accumulation_.data(),
                   num_rows() * sizeof(std::atomic<double>));
  numa::Interleave(intermediate_.data(),
                   num_rows() * sizeof(std::atomic<double>));
  if (!frontier_.empty()) {
    numa::Interleave(frontier_.data(),
                     frontier_.size() * sizeof(std::atomic<uint64_t>));
  }
}

void MonoTable::RebuildFrontier() {
  for (auto& word : frontier_) word.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < num_rows(); ++i) {
    if (intermediate_[i].load(std::memory_order_relaxed) != identity_) {
      MarkDirty(i);
    }
  }
}

double MonoTable::FrontierOccupancy() const {
  if (num_rows() == 0 || frontier_.empty()) return 0.0;
  uint64_t dirty = 0;
  for (const auto& word : frontier_) {
    dirty += static_cast<uint64_t>(
        __builtin_popcountll(word.load(std::memory_order_relaxed)));
  }
  return static_cast<double>(dirty) / static_cast<double>(num_rows());
}

double MonoTable::HarvestDelta(size_t row) {
  const double tmp = AtomicExchange(&intermediate_[row], identity_);
  if (tmp == identity_) return identity_;
  AtomicCombine(&accumulation_[row], tmp, kind_);
  return tmp;
}

bool MonoTable::HasUsefulDelta(size_t row) const {
  const double delta = intermediate_[row].load(std::memory_order_relaxed);
  if (delta == identity_) return false;
  Aggregator agg(kind_);
  return agg.Improves(accumulation_[row].load(std::memory_order_relaxed), delta);
}

double MonoTable::PendingDeltaMass() const {
  double mass = 0.0;
  Aggregator agg(kind_);
  for (size_t i = 0; i < num_rows(); ++i) {
    const double delta = intermediate_[i].load(std::memory_order_relaxed);
    if (delta == identity_) continue;
    if (kind_ == AggKind::kSum || kind_ == AggKind::kCount) {
      mass += std::abs(delta);
    } else if (agg.Improves(accumulation_[i].load(std::memory_order_relaxed), delta)) {
      mass += 1.0;
    }
  }
  return mass;
}

std::vector<double> MonoTable::SnapshotAccumulation() const {
  std::vector<double> out(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) {
    out[i] = accumulation_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> MonoTable::SnapshotIntermediate() const {
  std::vector<double> out(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) {
    out[i] = intermediate_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Status MonoTable::Restore(const std::vector<double>& x,
                          const std::vector<double>& delta) {
  return Initialize(x, delta);
}

}  // namespace powerlog
