#include "runtime/worker.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/numa_arena.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "runtime/checkpoint.h"
#include "runtime/fault.h"
#include "runtime/termination.h"

namespace powerlog::runtime {
namespace {

void SpinSleep(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace

void Worker::MaybeStall() {
  const EngineOptions& options = *shared_->options;
  if (options.stall_every_us <= 0) return;
  const int64_t now = NowMicros();
  if (next_stall_us_ == 0) {
    next_stall_us_ =
        now + static_cast<int64_t>(-static_cast<double>(options.stall_every_us) *
                                   std::log(1.0 - stall_rng_.NextDouble()));
    return;
  }
  if (now < next_stall_us_) return;
  const int64_t pause = static_cast<int64_t>(
      -static_cast<double>(options.stall_mean_us) *
      std::log(1.0 - stall_rng_.NextDouble()));
  stats_.stall_us += pause;
  trace::Instant(tracer_, "stall", static_cast<double>(pause));
  SpinSleep(pause);
  next_stall_us_ =
      NowMicros() + static_cast<int64_t>(-static_cast<double>(options.stall_every_us) *
                                         std::log(1.0 - stall_rng_.NextDouble()));
}

void RecordTraceSample(SharedState* shared) {
  const bool record = shared->options->record_trace;
  trace::Tracer* tracer = shared->tracer;
  if (!record && tracer == nullptr) return;
  TraceSample sample;
  sample.seconds = static_cast<double>(NowMicros() - shared->start_us) * 1e-6;
  sample.global_aggregate = 0.0;
  for (size_t i = 0; i < shared->table->num_rows(); ++i) {
    const double v = shared->table->accumulation(i);
    if (std::isfinite(v)) sample.global_aggregate += v;
  }
  sample.pending_mass = shared->table->PendingDeltaMass();
  sample.inflight_updates = static_cast<double>(shared->bus->InFlightUpdates());
  sample.frontier_occupancy = shared->table->FrontierOccupancy();
  if (shared->worker_clock != nullptr) {
    int64_t min_clock = std::numeric_limits<int64_t>::max();
    int64_t max_clock = 0;
    for (const auto& clock : *shared->worker_clock) {
      const int64_t c = clock.load(std::memory_order_acquire);
      min_clock = std::min(min_clock, c);
      max_clock = std::max(max_clock, c);
    }
    sample.staleness_bound = static_cast<double>(
        shared->staleness_bound.load(std::memory_order_relaxed));
    sample.staleness_skew = static_cast<double>(max_clock - min_clock);
  }
  if (shared->worker_beta != nullptr) {
    sample.worker_beta.reserve(shared->worker_beta->size());
    for (const auto& beta : *shared->worker_beta) {
      sample.worker_beta.push_back(beta.load(std::memory_order_relaxed));
    }
  }
  if (shared->worker_busy != nullptr) {
    sample.worker_busy.reserve(shared->worker_busy->size());
    for (const auto& busy : *shared->worker_busy) {
      sample.worker_busy.push_back(busy.load(std::memory_order_relaxed));
    }
  }
  // Mirror the timeline onto the sampling thread's event ring as Perfetto
  // counter tracks, so the trace view shows convergence progress alongside
  // the spans.
  trace::CounterSample(tracer, "timeline.global_aggregate",
                       sample.global_aggregate);
  trace::CounterSample(tracer, "timeline.pending_mass", sample.pending_mass);
  trace::CounterSample(tracer, "timeline.inflight_updates",
                       sample.inflight_updates);
  trace::CounterSample(tracer, "timeline.frontier_occupancy",
                       sample.frontier_occupancy);
  if (shared->worker_clock != nullptr) {
    trace::CounterSample(tracer, "timeline.staleness.bound",
                         sample.staleness_bound);
    trace::CounterSample(tracer, "timeline.staleness.skew",
                         sample.staleness_skew);
  }
  if (!record) return;
  std::lock_guard<std::mutex> lock(shared->trace_mutex);
  shared->trace.push_back(std::move(sample));
}

bool PauseWorkers(SharedState* shared, std::vector<uint32_t>* victims) {
  {
    std::lock_guard<std::mutex> lock(shared->ctl_mutex);
    ++shared->pause_epoch;
  }
  shared->pause_pending.store(true, std::memory_order_release);
  if (shared->options->mode == ExecMode::kSync) shared->barrier->Break();
  shared->ctl_cv.notify_all();

  std::unique_lock<std::mutex> lock(shared->ctl_mutex);
  while (true) {
    if (shared->stop.load(std::memory_order_acquire)) return false;
    for (uint32_t w = 0; w < shared->options->num_workers; ++w) {
      auto& ctl = (*shared->control)[w];
      if (ctl.dead.load(std::memory_order_acquire) != 0 &&
          std::find(victims->begin(), victims->end(), w) == victims->end()) {
        ctl.incarnation.fetch_add(1, std::memory_order_acq_rel);
        victims->push_back(w);
      }
    }
    const int64_t live = static_cast<int64_t>(shared->options->num_workers) -
                         static_cast<int64_t>(victims->size());
    if (shared->parked >= live) return true;
    shared->ctl_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void ResumeWorkers(SharedState* shared, bool rearm) {
  if (rearm && shared->options->mode == ExecMode::kSync &&
      shared->barrier->broken()) {
    shared->barrier->Reset();
  }
  {
    std::lock_guard<std::mutex> lock(shared->ctl_mutex);
    shared->resume_epoch = shared->pause_epoch;
  }
  shared->pause_pending.store(false, std::memory_order_release);
  shared->ctl_cv.notify_all();
}

Worker::Worker(uint32_t id, SharedState* shared, int64_t incarnation)
    : id_(id), shared_(shared), tracer_(shared->tracer),
      incarnation_(incarnation) {
  owned_ = shared_->partition->OwnedVertices(id);
  frontier_ = shared_->options->frontier;
  if (frontier_) {
    // owned_ is ascending, so each bitmap word's owned rows are contiguous.
    for (VertexId v : owned_) {
      const size_t word = static_cast<size_t>(v) >> 6;
      if (owned_words_.empty() || owned_words_.back().first != word) {
        owned_words_.emplace_back(word, 0);
      }
      owned_words_.back().second |= uint64_t{1} << (v & 63);
    }
  }
  // SIMD edge kernels: --no-simd forces the scalar fused loops even when
  // BuildKernel installed a span function (POWERLOG_SIMD only constrains
  // which span function that is).
  simd_enabled_ =
      shared_->options->simd && shared_->kernel->scatter_span != nullptr;
  span_fn_ = simd_enabled_ ? shared_->kernel->scatter_span : nullptr;
  stall_rng_.Seed(shared_->options->stall_seed * 0x9E3779B9ULL + id * 1297 + 1);
  stats_.worker_id = id;
  collect_metrics_ = shared_->options->collect_metrics;
  // §5.4 adaptive priority applies to the async family only: sync supersteps
  // never consume the EMA, so feeding it there would leave garbage behind.
  adaptive_priority_ = shared_->options->adaptive_priority &&
                       shared_->options->mode != ExecMode::kSync;
  const uint32_t n = shared_->options->num_workers;
  BufferPolicy::Params params = shared_->options->buffer;
  switch (shared_->options->mode) {
    case ExecMode::kAsync:
      params.kind = FlushPolicyKind::kEager;
      break;
    case ExecMode::kAap:
      params.kind = FlushPolicyKind::kFixed;
      break;
    case ExecMode::kSync:
      // Buffers flushed only at barriers; policy is irrelevant.
      params.kind = FlushPolicyKind::kFixed;
      params.beta = 1e18;
      params.tau_us = INT64_MAX / 2;
      break;
    case ExecMode::kSyncAsync:
      // Honours the configured policy: adaptive by default; a fixed-buffer
      // override models Maiter/Prom-style engines without β/τ adaptation.
      break;
    case ExecMode::kStaleSync:
      // Like kSyncAsync: the configured (adaptive by default) policy drives
      // the mid-sweep flush cadence, and the resulting per-worker β spread
      // is one of the staleness auto-tuner's inputs. Superstep boundaries
      // still force-flush everything.
      break;
  }
  // One buffer per *peer* — contributions to self-owned keys go straight
  // into the MonoTable, so a self slot would only be dead weight.
  peers_.reserve(n - 1);
  out_buffers_.reserve(n - 1);
  policies_.reserve(n - 1);
  for (uint32_t w = 0; w < n; ++w) {
    if (w == id_) continue;
    peers_.push_back(w);
    out_buffers_.emplace_back(shared_->kernel->agg);
    policies_.emplace_back(params);
    if (collect_metrics_) policies_.back().EnableTrajectory(shared_->start_us);
  }
}

void Worker::ExportMetrics(metrics::MetricsSnapshot* snap) const {
  for (size_t slot = 0; slot < policies_.size(); ++slot) {
    const auto& trajectory = policies_[slot].trajectory();
    if (trajectory.empty()) continue;
    metrics::MetricsSnapshot::Series series;
    series.reserve(trajectory.size());
    for (const auto& [t_us, beta] : trajectory) {
      series.emplace_back(static_cast<double>(t_us), beta);
    }
    std::string name =
        StringFormat("buffer.beta.w%u_to_w%u", id_, peers_[slot]);
    if (incarnation_ > 0) {
      name += StringFormat(".r%lld", static_cast<long long>(incarnation_));
    }
    snap->AddSeries(std::move(name), std::move(series));
  }
}

void Worker::Run() {
  char tag[16];
  std::snprintf(tag, sizeof(tag), "w%u", id_);
  Logger::SetThreadTag(tag);
  // Affinity first, before any shard memory is touched: first-touch pages
  // faulted by this thread then land on its node. Advisory — a failed
  // sched_setaffinity (cgroup cpuset, non-Linux) is silently ignored.
  if (shared_->worker_cpu != nullptr) {
    numa::PinThreadToCpu((*shared_->worker_cpu)[id_]);
  }
  if (shared_->tracer != nullptr) {
    // Each incarnation gets its own ring: a fenced-but-still-unwinding
    // zombie may emit its last span-end events while the respawn runs, and
    // the ring is single-writer. The run tag keeps concurrent runs sharing
    // one injected tracer (the serving plane) from colliding on ring names.
    std::string ring = StringFormat("worker%u", id_);
    if (incarnation_ > 0) {
      ring += StringFormat(".r%lld", static_cast<long long>(incarnation_));
    }
    ring += shared_->options->trace_run_tag;
    trace::EventRing* own = shared_->tracer->RegisterCurrentThread(ring);
    if (own != nullptr && id_ == 0 && incarnation_ == 0 &&
        shared_->options->trace_flow_id != 0) {
      // Receive side of the serving plane's request arrow: the caller
      // emitted a FlowSend with this id around Engine::Run, so Perfetto
      // draws request span tree → this run's worker spans as one tree.
      own->Emit(trace::EventType::kFlowRecv, "query.run",
                static_cast<double>(shared_->options->trace_flow_id));
    }
  }
  switch (shared_->options->mode) {
    case ExecMode::kSync:
      RunSync();
      break;
    case ExecMode::kStaleSync:
      RunStaleSync();
      break;
    default:
      RunAsyncLike();
      break;
  }
  trace::Tracer::UnregisterCurrentThread();
}

void Worker::Beat() {
  if (shared_->control == nullptr) return;
  ++beats_;
  (*shared_->control)[id_].heartbeat.store(beats_, std::memory_order_release);
}

void Worker::MaybePark() {
  if (!shared_->pause_pending.load(std::memory_order_acquire)) return;
  // Hand everything buffered to the bus first so the supervisor's cut sees
  // it (absorbed for sum/count checkpoints, discarded on rollback — either
  // way nothing stays hidden in a private buffer across the pause).
  FlushBuffers(/*force=*/true);
  std::unique_lock<std::mutex> lock(shared_->ctl_mutex);
  if (shared_->resume_epoch >= shared_->pause_epoch) return;
  trace::SpanGuard pause_span(tracer_, "paused");
  const int64_t epoch = shared_->pause_epoch;
  auto& ctl = (*shared_->control)[id_];
  ctl.waiting.store(1, std::memory_order_release);
  ++shared_->parked;
  shared_->ctl_cv.notify_all();
  shared_->ctl_cv.wait(lock, [&] {
    return shared_->resume_epoch >= epoch ||
           shared_->stop.load(std::memory_order_acquire);
  });
  --shared_->parked;
  ctl.waiting.store(0, std::memory_order_release);
}

bool Worker::CheckControl() {
  if (shared_->control == nullptr) return true;
  auto& ctl = (*shared_->control)[id_];
  if (ctl.incarnation.load(std::memory_order_acquire) != incarnation_) {
    // Fenced: the supervisor declared this incarnation dead and a
    // replacement owns the shard. Vanish without touching shared state.
    dead_ = true;
    return false;
  }
  ++beats_;
  ctl.heartbeat.store(beats_, std::memory_order_release);
  if (shared_->injector != nullptr) {
    switch (shared_->injector->OnHeartbeat(id_, beats_)) {
      case FaultInjector::WorkerFault::kCrash:
        // Emulate losing this node: its table shard and every contribution
        // still sitting in its outgoing buffers are gone. The dead flag is
        // raised *before* the wipe (state 1 = dying) so the termination
        // controller (which refuses quiescence while a dead worker awaits
        // recovery) closes the converged-on-a-half-wiped-table window, and
        // promoted to 2 (= wipe complete) afterwards so the supervisor never
        // restores rows this thread is still about to clobber.
        trace::Instant(tracer_, "fault.crash", static_cast<double>(id_));
        ctl.dead.store(1, std::memory_order_release);
        for (VertexId v : owned_) shared_->table->WipeRow(v);
        for (CombiningBuffer& buffer : out_buffers_) buffer.Clear();
        ctl.dead.store(2, std::memory_order_release);
        dead_ = true;
        return false;
      case FaultInjector::WorkerFault::kHang:
        trace::Instant(tracer_, "fault.hang", static_cast<double>(id_));
        SpinSleep(shared_->injector->plan().hang_duration_us);
        // The supervisor may have fenced us off while we slept.
        if (ctl.incarnation.load(std::memory_order_acquire) != incarnation_) {
          dead_ = true;
          return false;
        }
        break;
      case FaultInjector::WorkerFault::kNone:
        break;
    }
  }
  MaybePark();
  return true;
}

size_t Worker::DrainInbox() {
  // Span only when there is something to drain: the async loop polls the
  // inbox constantly, and an empty-drain span per poll would churn the ring.
  trace::SpanGuard drain_span(
      tracer_ != nullptr && shared_->bus->HasPending(id_) ? tracer_ : nullptr,
      "drain");
  const int64_t t0 = collect_metrics_ ? NowMicros() : 0;
  inbox_scratch_.clear();
  const size_t received = shared_->bus->Receive(id_, &inbox_scratch_);
  for (const Update& u : inbox_scratch_) {
    shared_->table->CombineDelta(u.key, u.value);
  }
  // Ack only after the combines above: the termination sampler's acquire
  // load of the in-flight counter must imply the table mass is visible.
  shared_->bus->AckDelivered(id_, received);
  stats_.inbox_updates += static_cast<int64_t>(received);
  if (collect_metrics_) stats_.inbox_drain_us += NowMicros() - t0;
  return received;
}

bool Worker::ProcessVertex(VertexId v) {
  MonoTable& table = *shared_->table;
  const Kernel& kernel = *shared_->kernel;
  Aggregator agg(kernel.agg);
  const double identity = table.identity();
  const bool ordered = kernel.agg == AggKind::kMin || kernel.agg == AggKind::kMax;

  // Peek first: cheap rejection without the atomic exchange.
  const double pending = table.intermediate(v);
  if (pending == identity) return false;
  const double x_before = table.accumulation(v);
  if (ordered && !agg.Improves(x_before, pending)) {
    // Stale delta: absorb it into the accumulation (no-op) and clear.
    // ΔX¹ = X¹ (ComputeInitialState), so even the very first deltas are
    // gated on strict improvement over X⁰ — equal deltas were already
    // accounted for when X¹ was derived.
    table.HarvestDelta(v);
    return false;
  }
  // Every defer branch below leaves the delta in the table, so it must
  // re-mark the row dirty — the sweep cleared the bit before calling us, and
  // a deferred row with a clear bit would never be revisited.
  // §5.4 priority threshold for sum programs: small deltas stay cached.
  if (!ordered && shared_->options->priority_threshold > 0.0 &&
      std::abs(pending) < shared_->options->priority_threshold &&
      idle_scans_ < 3) {
    if (frontier_) table.MarkDirty(v);
    return false;
  }
  // §5.4 adaptive priority: defer deltas well below this worker's moving
  // average pending magnitude so they accumulate before propagation.
  if (!ordered && adaptive_priority_) {
    scan_abs_sum_ += std::abs(pending);
    ++scan_count_;
    if (idle_scans_ < 3 && priority_ema_ > 0.0 &&
        std::abs(pending) < 0.3 * priority_ema_) {
      if (frontier_) table.MarkDirty(v);
      return false;
    }
  }
  // Δ-stepping (sync min programs): expand only the current bucket.
  if (kernel.agg == AggKind::kMin && shared_->options->delta_stepping > 0.0 &&
      shared_->options->mode == ExecMode::kSync &&
      pending > shared_->bucket_limit.load(std::memory_order_relaxed)) {
    if (frontier_) table.MarkDirty(v);
    return false;
  }

  const double tmp = table.HarvestDelta(v);
  if (tmp == identity) return false;  // raced with another harvest
  if (ordered && !agg.Improves(x_before, tmp)) return false;
  shared_->harvests.fetch_add(1, std::memory_order_relaxed);
  ++stats_.harvests;

  // Step 3 of Fig. 7: apply F' and route contributions.
  const int64_t apps = ScatterDelta(v, tmp);
  shared_->edge_applications.fetch_add(apps, std::memory_order_relaxed);
  stats_.edge_applications += apps;
  // Comparator configurations inflate per-edge compute (JVM/Spark engines);
  // sleep the debt off in >=200us chunks to dodge the OS sleep quantum.
  if (shared_->options->compute_inflation_ns_per_edge > 0.0) {
    compute_debt_ns_ += static_cast<int64_t>(
        shared_->options->compute_inflation_ns_per_edge * static_cast<double>(apps));
    if (compute_debt_ns_ > 200000) {
      SpinSleep(compute_debt_ns_ / 1000);
      compute_debt_ns_ = 0;
    }
  }
  return true;
}

int64_t Worker::ScatterDelta(VertexId v, double tmp) {
  const Kernel& kernel = *shared_->kernel;
  const EdgeKernelSpec& spec = kernel.scatter;
  const Graph::EdgeRange edges = shared_->prop->OutEdges(v);
  const double deg = static_cast<double>(shared_->graph->OutDegree(v));
  const int64_t apps = static_cast<int64_t>(edges.size());
  auto route = [&](VertexId dst, double contribution) {
    const uint32_t owner = shared_->partition->WorkerOf(dst);
    if (owner == id_) {
      shared_->table->CombineDelta(dst, contribution);
    } else {
      out_buffers_[owner < id_ ? owner : owner - 1].Add(dst, contribution);
    }
  };
  if (spec.uniform()) {
    // F' ignores w under this shape: evaluate once, the loop only routes.
    // This evaluate-once form is already width-independent — the span
    // kernel's broadcast would only add a scratch round-trip — so it serves
    // both dispatch levels and is counted as vector lanes when SIMD is on.
    const double contribution = ApplyEdgeKernel(spec, tmp, 0.0, deg);
    for (const Edge& e : edges) route(e.dst, contribution);
    stats_.specialized_edges += apps;
    if (simd_enabled_) {
      stats_.vector_edges += apps;
    } else {
      stats_.scalar_edges += apps;
    }
    return apps;
  }
  if (simd_enabled_ && spec.specialized() && edges.size() >= kSimdMinSpan) {
    // Weighted specialized shape over a long span: compute all contributions
    // wide into the scratch column, then route scalar (routing needs the
    // per-destination ownership test and an atomic combine — no scatter).
    const size_t n = edges.size();
    if (contrib_scratch_.size() < n) contrib_scratch_.resize(n);
    span_fn_(spec, tmp, deg, edges.begin(), n, contrib_scratch_.data());
    const Edge* e = edges.begin();
    for (size_t i = 0; i < n; ++i) route(e[i].dst, contrib_scratch_[i]);
    stats_.specialized_edges += apps;
    stats_.vector_edges += apps;
    return apps;
  }
  switch (spec.op) {
    case KernelOp::kXPlusW:
      for (const Edge& e : edges) route(e.dst, tmp + e.weight);
      stats_.specialized_edges += apps;
      stats_.scalar_edges += apps;
      break;
    case KernelOp::kXTimesW:
      for (const Edge& e : edges) route(e.dst, tmp * e.weight);
      stats_.specialized_edges += apps;
      stats_.scalar_edges += apps;
      break;
    case KernelOp::kAXW: {
      // (a*x) is loop-invariant; hoisting it preserves the association.
      const double ax = spec.a * tmp;
      for (const Edge& e : edges) route(e.dst, ax * e.weight);
      stats_.specialized_edges += apps;
      stats_.scalar_edges += apps;
      break;
    }
    case KernelOp::kAXWB: {
      const double ax = spec.a * tmp;
      for (const Edge& e : edges) route(e.dst, (ax * e.weight) * spec.b);
      stats_.specialized_edges += apps;
      stats_.scalar_edges += apps;
      break;
    }
    default:  // kGeneric — per-edge stack-VM fallback
      for (const Edge& e : edges) {
        route(e.dst, kernel.EvalEdge(tmp, e.weight, deg));
      }
      stats_.vm_edges += apps;
      break;
  }
  return apps;
}

void Worker::FlushBuffers(bool force) {
  const int64_t now = NowMicros();
  for (size_t slot = 0; slot < out_buffers_.size(); ++slot) {
    CombiningBuffer& buffer = out_buffers_[slot];
    if (buffer.empty()) continue;
    if (!force && !policies_[slot].ShouldFlush(buffer.size(), now)) continue;
    // The Send below emits this message's FlowSend event, so it nests inside
    // the flush span and Perfetto draws the arrow from here.
    trace::SpanGuard flush_span(tracer_, "flush");
    const size_t flushed = buffer.size();
    UpdateBatch batch = shared_->bus->AcquireBatch();
    buffer.Drain(&batch);
    shared_->bus->Send(id_, peers_[slot], std::move(batch));
    policies_[slot].OnFlush(flushed, now);
    ++stats_.flushes;
    stats_.flushed_updates += static_cast<int64_t>(flushed);
    if (shared_->flush_size_hist != nullptr) {
      shared_->flush_size_hist->Observe(static_cast<double>(flushed));
    }
  }
  PublishBeta();
}

void Worker::PublishBeta() {
  if (shared_->worker_beta == nullptr) return;
  // A single-worker run has no peers and therefore no policies; publish the
  // configured β instead of leaving the gauge frozen at its initial value.
  double mean = shared_->options->buffer.beta;
  if (!policies_.empty()) {
    double sum = 0.0;
    for (const BufferPolicy& policy : policies_) sum += policy.beta();
    mean = sum / static_cast<double>(policies_.size());
  }
  (*shared_->worker_beta)[id_].store(mean, std::memory_order_relaxed);
}

bool Worker::ArriveAndWaitTimed() {
  // Mark the wait so the supervisor's hang detector never mistakes a
  // barrier park (arbitrarily long behind a straggler) for a hung worker.
  auto* ctl = shared_->control != nullptr ? &(*shared_->control)[id_] : nullptr;
  if (ctl != nullptr) ctl->waiting.store(1, std::memory_order_release);
  trace::SpanGuard barrier_span(tracer_, "barrier");
  const int64_t t0 = collect_metrics_ ? NowMicros() : 0;
  const bool serial = shared_->barrier->ArriveAndWait();
  if (collect_metrics_) stats_.barrier_wait_us += NowMicros() - t0;
  if (ctl != nullptr) ctl->waiting.store(0, std::memory_order_release);
  return serial;
}

int64_t Worker::SweepOwned(bool* exited) {
  trace::SpanGuard sweep_span(tracer_, "sweep");
  *exited = false;
  const bool sync = shared_->options->mode == ExecMode::kSync;
  MonoTable& table = *shared_->table;
  int64_t useful = 0;
  // Mid-sweep cadence, keyed off the loop index. The old code keyed off the
  // vertex id (`(v & 0xFF) == 0`): under hash partitioning a worker owning
  // no ids ≡ 0 (mod 256) never hit a control point mid-sweep, starving the
  // heartbeat/pause/flush machinery for the whole shard scan.
  auto control_point = [&](size_t idx) {
    if (!sync && (idx & 0x3F) == 0x3F) FlushBuffers(/*force=*/false);
    if ((idx & 0xFF) == 0xFF) {
      if (sync) MaybeStall();
      if (!CheckControl()) return false;
    }
    return true;
  };

  if (!frontier_) {
    // Escape hatch: the pre-frontier full scan.
    for (size_t idx = 0; idx < owned_.size(); ++idx) {
      if (ProcessVertex(owned_[idx])) ++useful;
      if (!control_point(idx)) {
        *exited = true;
        return useful;
      }
    }
    return useful;
  }

  size_t active = 0;
  if (!sparse_sweep_) {
    // Dense sweep: walk the shard, peeking the bitmap (relaxed, 64 rows per
    // word) and paying the clearing RMW only for dirty rows.
    ++stats_.dense_sweeps;
    for (size_t idx = 0; idx < owned_.size(); ++idx) {
      const VertexId v = owned_[idx];
      if (table.IsDirty(v)) {
        table.ClearDirty(v);  // before the harvest read — see mono_table.h
        ++active;
        if (ProcessVertex(v)) ++useful;
      } else {
        ++stats_.frontier_skipped;
      }
      if (!control_point(idx)) {
        *exited = true;
        return useful;
      }
    }
  } else {
    // Sparse sweep: scan only the bitmap words this shard touches,
    // processing each word's set rows inline (ctz walk, bits cleared at
    // processing time). The word range is claimed through the steal plane
    // when it is on — the owner walks forward via fetch_add while idle
    // peers may CAS the limit down and take the back half (see StealShard).
    ++stats_.sparse_sweeps;
    StealShard* shard = nullptr;
    if (shared_->steal != nullptr && !owned_words_.empty()) {
      shard = &(*shared_->steal)[id_];
      shard->words = owned_words_.data();
      shard->next.store(0, std::memory_order_relaxed);
      shard->limit.store(static_cast<uint32_t>(owned_words_.size()),
                         std::memory_order_relaxed);
      shard->active.store(1, std::memory_order_release);
    }
    size_t processed = 0;
    for (size_t iter = 0;; ++iter) {
      size_t idx = iter;
      if (shard != nullptr) {
        idx = shard->next.fetch_add(1, std::memory_order_acq_rel);
        if (idx >= shard->limit.load(std::memory_order_acquire)) break;
      } else if (idx >= owned_words_.size()) {
        break;
      }
      const auto& [word, mask] = owned_words_[idx];
      uint64_t bits = table.FrontierWord(word) & mask;
      while (bits != 0) {
        const int bit = __builtin_ctzll(bits);
        bits &= bits - 1;
        const VertexId v = static_cast<VertexId>((word << 6) | bit);
        table.ClearDirty(v);
        ++processed;
        if (ProcessVertex(v)) ++useful;
      }
      if (!control_point(iter)) {
        if (shard != nullptr) shard->active.store(0, std::memory_order_release);
        *exited = true;
        return useful;
      }
    }
    if (shard != nullptr) shard->active.store(0, std::memory_order_release);
    // Rows in words a thief claimed are not in `processed`; the skipped
    // count (and the density estimate below) treat them as clean, which
    // only biases the next sweep toward staying sparse — harmless, a thief
    // only fires when the frontier is already thin.
    active = processed;
    stats_.frontier_skipped +=
        static_cast<int64_t>(owned_.size() - std::min(processed, owned_.size()));
  }
  active_fraction_ = owned_.empty()
                         ? 0.0
                         : static_cast<double>(active) /
                               static_cast<double>(owned_.size());
  sparse_sweep_ = active_fraction_ < kSparseThreshold;
  return useful;
}

bool Worker::TryStealSweep(int64_t* useful, bool* exited) {
  *exited = false;
  if (shared_->steal == nullptr || dead_) return false;
  MonoTable& table = *shared_->table;
  const bool sync = shared_->options->mode == ExecMode::kSync;

  // Victim selection: the active owner with the most unclaimed words — the
  // definition of "slowest" that matters, since remaining range is exactly
  // the work a straggler still owes this round.
  uint32_t victim = UINT32_MAX;
  uint32_t best_remaining = 1;  // steal only when >= 2 words remain
  for (uint32_t w = 0; w < shared_->options->num_workers; ++w) {
    if (w == id_) continue;
    const StealShard& s = (*shared_->steal)[w];
    if (s.active.load(std::memory_order_acquire) == 0) continue;
    const uint32_t lim = s.limit.load(std::memory_order_acquire);
    const uint32_t nxt = s.next.load(std::memory_order_acquire);
    const uint32_t remaining = lim > nxt ? lim - nxt : 0;
    if (remaining > best_remaining) {
      best_remaining = remaining;
      victim = w;
    }
  }
  if (victim == UINT32_MAX) return false;

  // Claim the back half [mid, lim) by lowering the victim's limit. A failed
  // CAS means the range moved under us (another thief, or the owner
  // finishing); give up this attempt rather than spinning — the caller
  // loops while claims succeed.
  StealShard& s = (*shared_->steal)[victim];
  uint32_t lim = s.limit.load(std::memory_order_acquire);
  const uint32_t nxt = s.next.load(std::memory_order_acquire);
  if (lim <= nxt + 1) return false;
  const uint32_t mid = nxt + (lim - nxt + 1) / 2;
  if (!s.limit.compare_exchange_strong(lim, mid, std::memory_order_acq_rel)) {
    return false;
  }
  // The words pointer is valid for the whole run (it aliases the victim's
  // owned_words_, whose storage never reallocates after construction), so a
  // claim that races the owner's sweep-end deactivation still walks live
  // data; any bits already processed harvest to the identity and no-op.
  trace::SpanGuard steal_span(tracer_, "steal");
  ++stats_.steal_attempts;
  stats_.steal_words += static_cast<int64_t>(lim - mid);
  const std::pair<size_t, uint64_t>* words = s.words;
  for (uint32_t i = mid; i < lim; ++i) {
    const auto& [word, mask] = words[i];
    uint64_t bits = table.FrontierWord(word) & mask;
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      const VertexId v = static_cast<VertexId>((word << 6) | bit);
      table.ClearDirty(v);
      if (ProcessVertex(v)) ++*useful;
    }
    // Same control cadence as a sweep: a thief must keep its heartbeat,
    // pause parking, and (async) flush points alive mid-claim.
    if (((i - mid) & 0x3F) == 0x3F) {
      if (!sync) FlushBuffers(/*force=*/false);
      if (!CheckControl()) {
        *exited = true;
        return true;
      }
    }
  }
  return true;
}

void Worker::RunSync() {
  const EngineOptions& options = *shared_->options;
  while (!shared_->stop.load(std::memory_order_acquire)) {
    trace::SpanGuard superstep_span(tracer_, "superstep");
    if (!CheckControl()) return;
    // --- compute phase ---
    MaybeStall();
    bool exited = false;
    int64_t useful = SweepOwned(&exited);
    if (exited) return;
    // Skew kill: instead of parking at the barrier behind a straggler,
    // poll the steal plane while any peer's compute phase is still pending
    // and claim half of the slowest active peer's remaining frontier words.
    // Stolen sends land in this worker's buffers and flush below, before
    // the all-sends-complete barrier, so superstep semantics are unchanged.
    // The poll (rather than a single check) matters on few-core hosts: a
    // straggler mid-sweep is only observable across a preemption, so one
    // early look almost always misses the window.
    if (shared_->sweeping != nullptr) {
      (*shared_->sweeping)[id_].store(0, std::memory_order_release);
      for (;;) {
        if (shared_->stop.load(std::memory_order_acquire) ||
            shared_->barrier->broken()) {
          break;  // recovery / shutdown: fall through to the barrier
        }
        bool pending = false;
        for (uint32_t w = 0; w < options.num_workers; ++w) {
          if (w != id_ &&
              (*shared_->sweeping)[w].load(std::memory_order_acquire) != 0) {
            pending = true;
            break;
          }
        }
        if (!pending) break;
        if (TryStealSweep(&useful, &exited)) {
          if (exited) return;
          continue;
        }
        Beat();
        if (!CheckControl()) return;
        SpinSleep(20);
      }
    }
    shared_->superstep_work.fetch_add(useful, std::memory_order_relaxed);
    FlushBuffers(/*force=*/true);
    // Model the distributed barrier's coordination cost.
    SpinSleep(options.barrier_overhead_us);
    ArriveAndWaitTimed();  // all sends complete

    // --- communication phase: wait until our inbox is fully delivered ---
    while (shared_->bus->HasPending(id_)) {
      Beat();
      DrainInbox();
      SpinSleep(20);
    }
    const bool serial = ArriveAndWaitTimed();  // all receives done

    // --- termination decision (one worker per superstep) ---
    if (serial) {
      const int64_t step = shared_->superstep.fetch_add(1) + 1;
      const int64_t work = shared_->superstep_work.exchange(0);
      const double mass = shared_->table->PendingDeltaMass();
      const Kernel& kernel = *shared_->kernel;
      double epsilon = options.epsilon_override >= 0
                           ? options.epsilon_override
                           : (kernel.termination.has_epsilon
                                  ? kernel.termination.epsilon
                                  : 0.0);
      bool done = false;
      if (work == 0 && mass == 0.0) done = true;  // fixpoint
      if (epsilon > 0.0) {
        // Paper criterion, same as the async path (termination.cpp): the
        // difference between two *consecutive* global aggregation results
        // must stay below ε for two supersteps in a row. The old
        // `PendingDeltaMass() < ε` shortcut measured one superstep's
        // unapplied delta mass and could stop at a different fixpoint than
        // the async modes. A NaN aggregate (diverging sum) never matches.
        const double global = GlobalAggregate(*shared_->table);
        if (!std::isnan(global) && !std::isnan(shared_->sync_prev_global) &&
            std::abs(global - shared_->sync_prev_global) < epsilon) {
          if (++shared_->sync_eps_streak >= 2) done = true;
        } else {
          shared_->sync_eps_streak = 0;
        }
        shared_->sync_prev_global = global;
      }
      if (work == 0 && mass > 0.0 && options.delta_stepping > 0.0 &&
          kernel.agg == AggKind::kMin) {
        // Δ-stepping: current bucket exhausted, advance to the smallest
        // pending tentative distance plus the bucket width.
        Aggregator agg(kernel.agg);
        double next_min = std::numeric_limits<double>::infinity();
        for (size_t row = 0; row < shared_->table->num_rows(); ++row) {
          const double d = shared_->table->intermediate(row);
          if (d == shared_->table->identity()) continue;
          if (agg.Improves(shared_->table->accumulation(row), d)) {
            next_min = std::min(next_min, d);
          }
        }
        shared_->bucket_limit.store(next_min + options.delta_stepping,
                                    std::memory_order_relaxed);
      }
      int64_t cap = options.max_supersteps;
      if (kernel.termination.max_iterations > 0 &&
          kernel.termination.max_iterations < cap) {
        cap = kernel.termination.max_iterations;
      }
      if (step >= cap) {
        done = true;
      } else if (done) {
        shared_->converged.store(true, std::memory_order_release);
      }
      if (done) shared_->stop.store(true, std::memory_order_release);
      RecordTraceSample(shared_);
      // Consistent checkpoint: every worker is parked at the next barrier,
      // all messages are drained, so the table snapshot is quiescent.
      if (!done && options.checkpoint_every > 0 &&
          step % options.checkpoint_every == 0 && shared_->ckpt != nullptr) {
        trace::SpanGuard ckpt_span(tracer_, "checkpoint.cut");
        const int64_t t0 = NowMicros();
        Status st = shared_->ckpt->Write(*shared_->table);
        shared_->checkpoint_us.fetch_add(NowMicros() - t0,
                                         std::memory_order_relaxed);
        if (st.ok()) {
          shared_->checkpoints_written.fetch_add(1, std::memory_order_relaxed);
        } else {
          POWERLOG_WARN << "checkpoint failed: " << st.ToString();
        }
      }
    }
    // Raise the compute-pending flag for the *next* superstep before the
    // barrier: every worker crosses with its flag already up, so no peer's
    // steal poll can observe a not-yet-raised flag (see SharedState).
    if (shared_->sweeping != nullptr) {
      (*shared_->sweeping)[id_].store(1, std::memory_order_release);
    }
    ArriveAndWaitTimed();  // decision visible to all
  }
}

void Worker::RunAsyncLike() {
  const EngineOptions& options = *shared_->options;
  const bool aap = options.mode == ExecMode::kAap;
  int64_t last_process_us = NowMicros();
  size_t received_since_process = 0;

  while (!shared_->stop.load(std::memory_order_acquire)) {
    if (!CheckControl()) return;
    MaybeStall();
    received_since_process += DrainInbox();

    // AAP (Grape+): pace the compute phase by incoming message volume — a
    // worker prefers to batch up arriving blocks before recomputing, with a
    // timeout so progress never stalls.
    if (aap) {
      const bool enough = received_since_process >= options.buffer.beta / 2;
      const bool timeout = NowMicros() - last_process_us >= options.buffer.tau_us;
      if (!enough && !timeout) {
        SpinSleep(10);
        continue;
      }
    }

    scan_abs_sum_ = 0.0;
    scan_count_ = 0;
    // SweepOwned interleaves communication with compute (a dedicated
    // communication thread in the paper; cooperative flush points here).
    bool exited = false;
    const bool any = SweepOwned(&exited) > 0;
    if (exited) return;
    FlushBuffers(/*force=*/false);
    if (scan_count_ > 0) {
      const double mean = scan_abs_sum_ / static_cast<double>(scan_count_);
      priority_ema_ = priority_ema_ == 0.0 ? mean : 0.7 * priority_ema_ + 0.3 * mean;
    }
    last_process_us = NowMicros();
    received_since_process = 0;

    auto& idle = (*shared_->idle_flags)[id_];
    // An empty own sweep is the steal trigger: help the slowest active
    // peer before declaring idleness. Stolen useful work keeps this worker
    // out of the idle set, so quiescence detection stays sound.
    int64_t stolen = 0;
    if (!any) {
      bool steal_exited = false;
      while (TryStealSweep(&stolen, &steal_exited)) {
        if (steal_exited) return;
      }
    }
    if (!any && stolen == 0) {
      ++idle_scans_;
      ++stats_.idle_scans;
      // Nothing useful locally: push out whatever is buffered so other
      // workers can progress, then declare idleness.
      FlushBuffers(/*force=*/true);
      idle.store(1, std::memory_order_release);
      SpinSleep(50);
    } else {
      idle_scans_ = 0;
      idle.store(0, std::memory_order_release);
    }
  }
  // A crashed/fenced incarnation lost its buffers with the "node"; only a
  // clean shutdown flushes the tail.
  if (!dead_) FlushBuffers(/*force=*/true);
}

int64_t Worker::SlowestLiveClock() const {
  const auto& clocks = *shared_->worker_clock;
  int64_t slowest = std::numeric_limits<int64_t>::max();
  for (uint32_t w = 0; w < shared_->options->num_workers; ++w) {
    if (shared_->control != nullptr &&
        (*shared_->control)[w].dead.load(std::memory_order_acquire) != 0) {
      // A dead peer's clock is frozen until recovery re-bases it; counting
      // it would wedge every gate behind a corpse.
      continue;
    }
    slowest =
        std::min(slowest, clocks[w].load(std::memory_order_acquire));
  }
  // At least our own (live) clock is always in the minimum.
  return slowest == std::numeric_limits<int64_t>::max()
             ? clocks[id_].load(std::memory_order_relaxed)
             : slowest;
}

bool Worker::WaitForSlowest() {
  if (shared_->worker_clock == nullptr) return true;
  const int64_t mine =
      (*shared_->worker_clock)[id_].load(std::memory_order_relaxed);
  int64_t slowest = SlowestLiveClock();
  if (mine - slowest >
      shared_->staleness_bound.load(std::memory_order_acquire)) {
    shared_->staleness_blocks.fetch_add(1, std::memory_order_relaxed);
    trace::SpanGuard park_span(tracer_, "stale.park");
    auto* ctl =
        shared_->control != nullptr ? &(*shared_->control)[id_] : nullptr;
    while (!shared_->stop.load(std::memory_order_acquire)) {
      // CheckControl keeps the heartbeat advancing and honours pause
      // requests (the ε consistent cut and recovery park gated workers
      // through the same rendezvous as everyone else); the drain keeps the
      // wire moving so a blocked fast worker never backpressures the
      // straggler it is waiting for.
      if (!CheckControl()) return false;
      DrainInbox();
      slowest = SlowestLiveClock();
      if (mine - slowest <=
          shared_->staleness_bound.load(std::memory_order_acquire)) {
        break;
      }
      // Gated on a straggler's clock: help it instead of just parking.
      // Stolen sends flush here (and are force-flushed again at this
      // worker's next superstep boundary, before its clock bump), and the
      // straggler's own quiescence state is untouched — it is mid-sweep,
      // not idle, so termination soundness is unchanged.
      int64_t stolen = 0;
      bool steal_exited = false;
      if (TryStealSweep(&stolen, &steal_exited)) {
        if (steal_exited) return false;
        FlushBuffers(/*force=*/false);
        continue;  // the straggler may have advanced; re-check the gate
      }
      // The `waiting` flag marks this as a legitimate park — the supervisor
      // must treat a staleness-gated worker as alive, not hung.
      if (ctl != nullptr) ctl->waiting.store(1, std::memory_order_release);
      {
        std::unique_lock<std::mutex> lock(shared_->ctl_mutex);
        shared_->ctl_cv.wait_for(lock, std::chrono::microseconds(200));
      }
      if (ctl != nullptr) ctl->waiting.store(0, std::memory_order_release);
    }
  }
  if (shared_->stop.load(std::memory_order_acquire)) return true;
  // High-water mark of the lead actually run with, recorded at gate pass:
  // the bounded-skew acceptance test asserts it never exceeds s. The min
  // clock only grows, so the lead cannot widen between here and our bump.
  const int64_t lead = mine - slowest;
  int64_t seen = shared_->staleness_max_lead.load(std::memory_order_relaxed);
  while (lead > seen &&
         !shared_->staleness_max_lead.compare_exchange_weak(
             seen, lead, std::memory_order_relaxed)) {
  }
  return true;
}

void Worker::RunStaleSync() {
  // Stale-synchronous parallel (Das & Zaniolo): BSP's superstep structure
  // without its barriers. Each worker sweeps, force-flushes, and bumps its
  // own completed-superstep clock; the only coordination is the staleness
  // gate at the loop top, which blocks a worker more than `s` supersteps
  // ahead of the slowest. s→∞ degenerates to the async family, s=0 to
  // barrier-free lockstep. Termination rides the async-family controller:
  // quiescence for min/max, the ε streak confirmed at a consistent cut
  // (ConfirmEpsilonAtCut's pause rendezvous is exactly a cut where all
  // clocks agree — every worker is parked between supersteps with flushed
  // buffers and an absorbed wire).
  auto& clock = (*shared_->worker_clock)[id_];
  // Straggler attribution: busy = the work phase (drain + sweep + steal +
  // flush), idle = the park at the staleness gate. EMA-smoothed (α = 0.8,
  // the PR-1 adaptation constant) so one noisy superstep cannot flip the
  // tuner's identity reading.
  const bool account_busy = shared_->worker_busy != nullptr;
  double busy_ema = 0.0;
  while (!shared_->stop.load(std::memory_order_acquire)) {
    trace::SpanGuard superstep_span(tracer_, "superstep");
    if (!CheckControl()) return;
    MaybeStall();
    const int64_t step_start_us = account_busy ? NowMicros() : 0;
    if (!WaitForSlowest()) return;
    if (shared_->stop.load(std::memory_order_acquire)) break;
    const int64_t work_start_us = account_busy ? NowMicros() : 0;
    DrainInbox();

    scan_abs_sum_ = 0.0;
    scan_count_ = 0;
    bool exited = false;
    bool any = SweepOwned(&exited) > 0;
    if (exited) return;
    // A fast worker with an empty sweep helps the straggler it would
    // otherwise end up gated on: steal here, *before* the superstep's
    // force-flush, so stolen sends are covered by the clock's release edge.
    if (!any) {
      int64_t stolen = 0;
      while (TryStealSweep(&stolen, &exited)) {
        if (exited) return;
      }
      any = stolen > 0;
    }
    // Superstep boundary: everything this superstep produced reaches the
    // wire before the clock advances, so a peer that observes clock k has
    // the release-ordered guarantee that superstep k's sends precede it.
    FlushBuffers(/*force=*/true);
    if (scan_count_ > 0) {
      const double mean = scan_abs_sum_ / static_cast<double>(scan_count_);
      priority_ema_ =
          priority_ema_ == 0.0 ? mean : 0.7 * priority_ema_ + 0.3 * mean;
    }
    if (account_busy) {
      const int64_t now = NowMicros();
      const int64_t total = now - step_start_us;
      if (total > 0) {
        const double frac = static_cast<double>(now - work_start_us) /
                            static_cast<double>(total);
        busy_ema = busy_ema == 0.0 ? frac : 0.8 * busy_ema + 0.2 * frac;
        (*shared_->worker_busy)[id_].store(busy_ema,
                                           std::memory_order_relaxed);
        trace::CounterSample(tracer_, "worker.busy", busy_ema);
      }
    }
    clock.fetch_add(1, std::memory_order_acq_rel);

    auto& idle = (*shared_->idle_flags)[id_];
    if (!any) {
      ++idle_scans_;
      ++stats_.idle_scans;
      idle.store(1, std::memory_order_release);
      SpinSleep(50);
    } else {
      idle_scans_ = 0;
      idle.store(0, std::memory_order_release);
    }
  }
  if (!dead_) FlushBuffers(/*force=*/true);
}

}  // namespace powerlog::runtime
