#include "runtime/network.h"

#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "runtime/fault.h"

namespace powerlog::runtime {

MessageBus::MessageBus(uint32_t num_workers, NetworkConfig config)
    : config_(config),
      inboxes_(num_workers),
      pair_messages_(static_cast<size_t>(num_workers) * num_workers),
      pair_updates_(static_cast<size_t>(num_workers) * num_workers) {}

void MessageBus::Send(uint32_t from, uint32_t to, UpdateBatch batch) {
  if (batch.empty()) return;
  const int64_t now = NowMicros();
  int64_t deliver_at =
      config_.instant
          ? now
          : now + static_cast<int64_t>(config_.latency_us +
                                       config_.per_update_us *
                                           static_cast<double>(batch.size()));
  bool duplicate = false;
  if (injector_ != nullptr) {
    switch (injector_->OnSend(from)) {
      case FaultInjector::BusFault::kDrop:
        return;  // lost on the wire; sender-side counters never saw it land
      case FaultInjector::BusFault::kDuplicate:
        duplicate = true;
        break;
      case FaultInjector::BusFault::kReorder:
        // Delay this message past its natural slot so later sends overtake.
        deliver_at += injector_->ReorderDelayUs(from);
        break;
      case FaultInjector::BusFault::kNone:
        break;
    }
  }
  const int64_t copies = duplicate ? 2 : 1;
  inflight_.fetch_add(copies * static_cast<int64_t>(batch.size()),
                      std::memory_order_acq_rel);
  messages_.fetch_add(copies, std::memory_order_relaxed);
  updates_.fetch_add(copies * static_cast<int64_t>(batch.size()),
                     std::memory_order_relaxed);
  const size_t pair = PairIndex(from, to);
  pair_messages_[pair].fetch_add(copies, std::memory_order_relaxed);
  pair_updates_[pair].fetch_add(copies * static_cast<int64_t>(batch.size()),
                                std::memory_order_relaxed);
  Inbox& inbox = inboxes_[to];
  std::lock_guard<std::mutex> lock(inbox.mutex);
  if (duplicate) {
    inbox.queue.push_back(Envelope{now, deliver_at, batch});
  }
  inbox.queue.push_back(Envelope{now, deliver_at, std::move(batch)});
}

size_t MessageBus::ReceiveNow(uint32_t worker, UpdateBatch* out) {
  Inbox& inbox = inboxes_[worker];
  std::lock_guard<std::mutex> lock(inbox.mutex);
  size_t received = 0;
  for (Envelope& envelope : inbox.queue) {
    received += envelope.batch.size();
    inflight_.fetch_sub(static_cast<int64_t>(envelope.batch.size()),
                        std::memory_order_acq_rel);
    out->insert(out->end(), envelope.batch.begin(), envelope.batch.end());
  }
  inbox.queue.clear();
  return received;
}

void MessageBus::Clear() {
  for (Inbox& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    for (const Envelope& envelope : inbox.queue) {
      inflight_.fetch_sub(static_cast<int64_t>(envelope.batch.size()),
                          std::memory_order_acq_rel);
    }
    inbox.queue.clear();
    inbox.cpu_debt_ns = 0;
  }
}

size_t MessageBus::Receive(uint32_t worker, UpdateBatch* out) {
  Inbox& inbox = inboxes_[worker];
  const int64_t now = NowMicros();
  size_t received = 0;
  size_t messages = 0;
  int64_t sleep_us = 0;
  {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    // Envelopes are queued in send order; delivery times are monotone per
    // sender but interleaved across senders, so scan the whole ready prefix
    // conservatively: pop any envelope whose time has come.
    for (auto it = inbox.queue.begin(); it != inbox.queue.end();) {
      if (it->deliver_at_us > now) {
        ++it;
        continue;
      }
      received += it->batch.size();
      ++messages;
      if (latency_hist_ != nullptr) {
        latency_hist_->Observe(static_cast<double>(now - it->sent_at_us));
      }
      inflight_.fetch_sub(static_cast<int64_t>(it->batch.size()),
                          std::memory_order_acq_rel);
      out->insert(out->end(), it->batch.begin(), it->batch.end());
      it = inbox.queue.erase(it);
    }
    // Burn the receiver-CPU cost, amortised through a debt accumulator so
    // sub-quantum costs still add up correctly.
    if (messages > 0 &&
        (config_.cpu_us_per_message > 0 || config_.cpu_us_per_update > 0)) {
      inbox.cpu_debt_ns += static_cast<int64_t>(
          1000.0 * (config_.cpu_us_per_message * static_cast<double>(messages) +
                    config_.cpu_us_per_update * static_cast<double>(received)));
    }
    if (inbox.cpu_debt_ns > 200000) {  // sleep off >= 200us chunks
      sleep_us = inbox.cpu_debt_ns / 1000;
      inbox.cpu_debt_ns = 0;
    }
  }
  if (sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  return received;
}

bool MessageBus::HasPending(uint32_t worker) const {
  const Inbox& inbox = inboxes_[worker];
  std::lock_guard<std::mutex> lock(inbox.mutex);
  return !inbox.queue.empty();
}

NetworkStats MessageBus::stats() const {
  NetworkStats s;
  s.messages = messages_.load(std::memory_order_relaxed);
  s.updates = updates_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace powerlog::runtime
