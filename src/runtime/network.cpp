#include "runtime/network.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "runtime/fault.h"

namespace powerlog::runtime {
namespace {

uint32_t RoundUpPow2(uint32_t v) {
  if (v < 2) return 2;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchPool

BatchPool::BatchPool(uint32_t capacity, size_t max_pooled_updates)
    // Vyukov's seq protocol needs >= 2 cells: with one cell, "readable at
    // position p" and "writable at position p+1" would both encode as
    // seq == p + 1.
    : nodes_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(nodes_.size() - 1),
      max_pooled_updates_(max_pooled_updates) {
  // Vyukov init: cell i is empty-and-writable for lap 0 when seq == i.
  for (uint64_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].seq.store(i, std::memory_order_relaxed);
  }
}

UpdateBatch BatchPool::Acquire() {
  uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Node& cell = nodes_[pos & mask_];
    // Acquire pairs with Release's seq store-release: observing
    // seq == pos + 1 makes the released batch's contents visible.
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
    if (dif == 0) {
      // Cell is full for this lap; claim it. Relaxed suffices: the cell's
      // own seq handshake carries all data ordering.
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        UpdateBatch batch = std::move(cell.batch);
        // Mark the cell empty-and-writable for the next lap.
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return batch;
      }
    } else if (dif < 0) {
      // Cell not yet filled for this lap: the pool is empty.
      misses_.fetch_add(1, std::memory_order_relaxed);
      return UpdateBatch{};
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

void BatchPool::Release(UpdateBatch batch) {
  batch.clear();
  if (batch.capacity() == 0 || batch.capacity() > max_pooled_updates_) {
    // Nothing worth caching (or too big to cache: pooling unbounded
    // capacities would pin the high-water memory mark forever).
    if (batch.capacity() != 0) discards_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Node& cell = nodes_[pos & mask_];
    // Acquire pairs with Acquire's store-release: observing seq == pos
    // proves the previous lap's reader is done with the cell.
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.batch = std::move(batch);
        // Release publishes the batch to the acquiring reader.
        cell.seq.store(pos + 1, std::memory_order_release);
        return;
      }
    } else if (dif < 0) {
      // Cell still holds an unclaimed batch from this lap: the pool is full.
      discards_.fetch_add(1, std::memory_order_relaxed);
      return;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

BatchPool::Stats BatchPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.discards = discards_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// MessageBus::Ring

void MessageBus::Ring::Init(uint32_t min_slots) {
  slots.resize(RoundUpPow2(min_slots));
  mask = slots.size() - 1;
}

bool MessageBus::Ring::TryPush(Envelope&& e) {
  const uint64_t t = tail.load(std::memory_order_relaxed);  // producer-owned
  // Acquire on head: the consumer's store-release after draining slot
  // (t - size) proves that slot's contents are dead and safe to overwrite.
  if (t - head.load(std::memory_order_acquire) >= slots.size()) return false;
  slots[t & mask] = std::move(e);
  tail.store(t + 1, std::memory_order_release);  // publish the filled slot
  return true;
}

bool MessageBus::Ring::TryPop(Envelope* out) {
  const uint64_t h = head.load(std::memory_order_relaxed);  // consumer-owned
  // Acquire on tail pairs with the producer's store-release: observing
  // tail > h makes slot h's contents visible.
  if (h == tail.load(std::memory_order_acquire)) return false;
  *out = std::move(slots[h & mask]);
  head.store(h + 1, std::memory_order_release);  // hand the slot back
  return true;
}

// ---------------------------------------------------------------------------
// MessageBus

MessageBus::MessageBus(uint32_t num_workers, NetworkConfig config)
    : config_(config),
      rings_(static_cast<size_t>(num_workers) * num_workers),
      inboxes_(num_workers),
      pool_(config.pool_batches != 0 ? config.pool_batches
                                     : 4 * num_workers * num_workers + 64),
      pair_messages_(static_cast<size_t>(num_workers) * num_workers),
      pair_updates_(static_cast<size_t>(num_workers) * num_workers) {
  for (Ring& ring : rings_) ring.Init(config_.ring_slots);
}

void MessageBus::Enqueue(uint32_t from, uint32_t to, Envelope envelope) {
  if (rings_[PairIndex(from, to)].TryPush(std::move(envelope))) return;
  // Ring full. Never spin: the consumer might be pause-parked (quiesce
  // rendezvous), and a sender spinning here could then never park itself.
  overflow_sends_.fetch_add(1, std::memory_order_relaxed);
  Inbox& inbox = inboxes_[to];
  std::lock_guard<std::mutex> lock(inbox.mutex);
  inbox.overflow.push_back(std::move(envelope));
  inbox.overflow_nonempty.store(true, std::memory_order_release);
}

void MessageBus::Send(uint32_t from, uint32_t to, UpdateBatch batch) {
  if (batch.empty()) return;
  // Clock-free fast path: with instant delivery, no latency histogram, and
  // no fault injector, timestamps are unobservable — stamp the envelope 0
  // ("deliverable immediately") and skip the clock read entirely.
  const bool needs_clock =
      !config_.instant || latency_hist_ != nullptr || injector_ != nullptr;
  const int64_t now = needs_clock ? NowMicros() : 0;
  int64_t deliver_at =
      config_.instant
          ? now
          : now + static_cast<int64_t>(config_.latency_us +
                                       config_.per_update_us *
                                           static_cast<double>(batch.size()));
  bool duplicate = false;
  if (injector_ != nullptr) {
    switch (injector_->OnSend(from)) {
      case FaultInjector::BusFault::kDrop:
        return;  // lost on the wire; sender-side counters never saw it land
      case FaultInjector::BusFault::kDuplicate:
        duplicate = true;
        break;
      case FaultInjector::BusFault::kReorder:
        // Delay this message past its natural slot so later sends overtake.
        deliver_at += injector_->ReorderDelayUs(from);
        break;
      case FaultInjector::BusFault::kNone:
        break;
    }
  }
  // Flow id linking this message's Send span to its Receive span. Emitted on
  // the sender's ring (nested in the worker's flush span); the duplicate
  // copy ships with flow 0 so one trace arrow never fans out to two
  // receives.
  uint64_t flow = 0;
  if (tracer_ != nullptr) {
    if (trace::EventRing* ring = trace::Tracer::Current()) {
      flow = tracer_->NextFlowId();
      ring->Emit(trace::EventType::kFlowSend, "msg",
                 static_cast<double>(flow));
    }
  }
  const int64_t copies = duplicate ? 2 : 1;
  const int64_t mass = copies * static_cast<int64_t>(batch.size());
  // Count before publishing: a sampler that observes the envelope's effects
  // necessarily observes the increment too (the increment is sequenced
  // before the ring's store-release), so in-flight mass only ever
  // over-reports transiently, never under-reports.
  inboxes_[to].pending.fetch_add(mass, std::memory_order_relaxed);
  // Pair cells are single-writer (sender's thread only, or the supervisor
  // under quiesce), so a plain load+store avoids a lock-prefixed RMW.
  const size_t pair = PairIndex(from, to);
  pair_messages_[pair].store(
      pair_messages_[pair].load(std::memory_order_relaxed) + copies,
      std::memory_order_relaxed);
  pair_updates_[pair].store(
      pair_updates_[pair].load(std::memory_order_relaxed) + mass,
      std::memory_order_relaxed);
  if (duplicate) {
    Envelope copy;
    copy.sent_at_us = now;
    copy.deliver_at_us = deliver_at;
    copy.batch = pool_.Acquire();
    copy.batch = batch;  // copy into recycled capacity
    Enqueue(from, to, std::move(copy));
  }
  Enqueue(from, to, Envelope{now, deliver_at, flow, std::move(batch)});
}

size_t MessageBus::Deliver(Envelope* envelope, int64_t now, UpdateBatch* out) {
  const size_t received = envelope->batch.size();
  if (latency_hist_ != nullptr) {
    latency_hist_->Observe(static_cast<double>(now - envelope->sent_at_us));
  }
  if (envelope->flow != 0) {
    // Receiver's ring (Deliver runs on the consuming worker's thread): the
    // other end of the Send→Receive arrow.
    if (trace::EventRing* ring = trace::Tracer::Current()) {
      ring->Emit(trace::EventType::kFlowRecv, "msg",
                 static_cast<double>(envelope->flow));
    }
  }
  out->insert(out->end(), envelope->batch.begin(), envelope->batch.end());
  pool_.Release(std::move(envelope->batch));
  return received;
}

size_t MessageBus::Receive(uint32_t worker, UpdateBatch* out) {
  Inbox& inbox = inboxes_[worker];
  // Mirror of Send's clock-free fast path: an envelope stamped
  // deliver_at == 0 is deliverable unconditionally, so a pure-instant run
  // never reads the clock here either. The clock is read lazily on the
  // first timestamped envelope (and eagerly when a histogram needs `now`
  // for the latency observation in Deliver).
  int64_t now = latency_hist_ != nullptr ? NowMicros() : -1;
  size_t received = 0;
  size_t messages = 0;
  // Pass 1 — leftovers staged by earlier calls (their delivery time had not
  // come yet). Staged envelopes are in arrival order; delivery times are
  // monotone per sender but interleaved across senders (and reorder faults
  // push individual envelopes past their natural slot), so scan the whole
  // staging area conservatively: deliver any envelope whose time has come,
  // compact the rest in place.
  if (!inbox.staging.empty()) {
    size_t keep = 0;
    for (size_t i = 0; i < inbox.staging.size(); ++i) {
      Envelope& envelope = inbox.staging[i];
      if (envelope.deliver_at_us > 0) {
        if (now < 0) now = NowMicros();
        if (envelope.deliver_at_us > now) {
          if (keep != i) inbox.staging[keep] = std::move(envelope);
          ++keep;
          continue;
        }
      }
      received += Deliver(&envelope, now, out);
      ++messages;
    }
    inbox.staging.resize(keep);
  }
  // Pass 2 — fresh arrivals, popped straight off each sender's ring and
  // delivered in place; only envelopes whose time has not come are staged
  // (so the staging detour is paid exactly by delayed traffic, never by the
  // instant-delivery fast path).
  const uint32_t n = num_workers();
  Envelope envelope;
  for (uint32_t from = 0; from < n; ++from) {
    Ring& ring = rings_[PairIndex(from, worker)];
    while (ring.TryPop(&envelope)) {
      if (envelope.deliver_at_us > 0) {
        if (now < 0) now = NowMicros();
        if (envelope.deliver_at_us > now) {
          inbox.staging.push_back(std::move(envelope));
          continue;
        }
      }
      received += Deliver(&envelope, now, out);
      ++messages;
    }
  }
  // Pass 3 — overflow spill (full-ring sends), same deliver-or-stage rule.
  if (inbox.overflow_nonempty.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    for (Envelope& e : inbox.overflow) {
      if (e.deliver_at_us > 0) {
        if (now < 0) now = NowMicros();
        if (e.deliver_at_us > now) {
          inbox.staging.push_back(std::move(e));
          continue;
        }
      }
      received += Deliver(&e, now, out);
      ++messages;
    }
    inbox.overflow.clear();
    inbox.overflow_nonempty.store(false, std::memory_order_release);
  }
  // Burn the receiver-CPU cost, amortised through a debt accumulator so
  // sub-quantum costs still add up correctly.
  if (messages > 0 &&
      (config_.cpu_us_per_message > 0 || config_.cpu_us_per_update > 0)) {
    inbox.cpu_debt_ns += static_cast<int64_t>(
        1000.0 * (config_.cpu_us_per_message * static_cast<double>(messages) +
                  config_.cpu_us_per_update * static_cast<double>(received)));
  }
  if (inbox.cpu_debt_ns > 200000) {  // sleep off >= 200us chunks
    const int64_t sleep_us = inbox.cpu_debt_ns / 1000;
    inbox.cpu_debt_ns = 0;
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  return received;
}

void MessageBus::AckDelivered(uint32_t worker, size_t updates) {
  if (updates == 0) return;
  const int64_t mass = static_cast<int64_t>(updates);
  // Release: the caller's table combines are sequenced before these stores,
  // so a sampler whose acquire load observes the decrement also observes
  // the applied mass in the table — the edge that makes
  // InFlightUpdates() + PendingDeltaMass() a sound conservation check.
  inboxes_[worker].pending.fetch_sub(mass, std::memory_order_release);
}

size_t MessageBus::ReceiveNow(uint32_t worker, UpdateBatch* out) {
  Inbox& inbox = inboxes_[worker];
  // Serialises supervisor-side helpers against each other; exclusivity
  // against the worker's own lock-free Receive comes from quiesce (every
  // worker is parked), not from this mutex.
  std::lock_guard<std::mutex> lock(inbox.mutex);
  const uint32_t n = num_workers();
  size_t received = 0;
  Envelope envelope;
  for (Envelope& staged : inbox.staging) {
    received += staged.batch.size();
    out->insert(out->end(), staged.batch.begin(), staged.batch.end());
    pool_.Release(std::move(staged.batch));
  }
  inbox.staging.clear();
  for (uint32_t from = 0; from < n; ++from) {
    Ring& ring = rings_[PairIndex(from, worker)];
    while (ring.TryPop(&envelope)) {
      received += envelope.batch.size();
      out->insert(out->end(), envelope.batch.begin(), envelope.batch.end());
      pool_.Release(std::move(envelope.batch));
    }
  }
  for (Envelope& e : inbox.overflow) {
    received += e.batch.size();
    out->insert(out->end(), e.batch.begin(), e.batch.end());
    pool_.Release(std::move(e.batch));
  }
  inbox.overflow.clear();
  inbox.overflow_nonempty.store(false, std::memory_order_release);
  inbox.pending.fetch_sub(static_cast<int64_t>(received),
                          std::memory_order_release);
  return received;
}

void MessageBus::Clear() {
  const uint32_t n = num_workers();
  for (uint32_t worker = 0; worker < n; ++worker) {
    Inbox& inbox = inboxes_[worker];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    int64_t discarded = 0;
    for (Envelope& e : inbox.staging) {
      discarded += static_cast<int64_t>(e.batch.size());
      pool_.Release(std::move(e.batch));
    }
    inbox.staging.clear();
    Envelope envelope;
    for (uint32_t from = 0; from < n; ++from) {
      Ring& ring = rings_[PairIndex(from, worker)];
      while (ring.TryPop(&envelope)) {
        discarded += static_cast<int64_t>(envelope.batch.size());
        pool_.Release(std::move(envelope.batch));
      }
    }
    for (Envelope& e : inbox.overflow) {
      discarded += static_cast<int64_t>(e.batch.size());
      pool_.Release(std::move(e.batch));
    }
    inbox.overflow.clear();
    inbox.overflow_nonempty.store(false, std::memory_order_release);
    inbox.cpu_debt_ns = 0;
    inbox.pending.fetch_sub(discarded, std::memory_order_release);
  }
}

NetworkStats MessageBus::stats() const {
  NetworkStats s;
  for (const auto& cell : pair_messages_) {
    s.messages += cell.load(std::memory_order_relaxed);
  }
  for (const auto& cell : pair_updates_) {
    s.updates += cell.load(std::memory_order_relaxed);
  }
  s.overflow_sends = overflow_sends_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace powerlog::runtime
