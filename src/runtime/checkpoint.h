// Checkpoint / restore of MonoTable state — the stand-in for the paper's
// HDFS checkpointing of intermediates (fault tolerance, Fig. 6).
//
// Format (little-endian): magic, aggregate kind, row count, then the
// accumulation and intermediate columns as raw doubles, then a FNV-1a
// checksum of everything before it.
#pragma once

#include <string>

#include "common/result.h"
#include "core/mono_table.h"

namespace powerlog::runtime {

/// Writes a consistent snapshot of `table` to `path` (atomic via temp+rename).
Status WriteCheckpoint(const MonoTable& table, const std::string& path);

/// Restores `table` from `path`; validates magic, aggregate kind, row count,
/// and checksum.
Status RestoreCheckpoint(MonoTable* table, const std::string& path);

/// A restored checkpoint as raw columns (for partial / row-wise recovery
/// where the live table must not be fully overwritten).
struct CheckpointData {
  std::vector<double> x;      ///< accumulation column
  std::vector<double> delta;  ///< intermediate column
};

/// Reads `path` into columns without touching a table; validates magic,
/// kind, row count, and checksum like RestoreCheckpoint.
Result<CheckpointData> ReadCheckpoint(AggKind kind, size_t rows,
                                      const std::string& path);

/// \brief Ping-pong checkpoint store with a CRC-carrying manifest.
///
/// Snapshots alternate between `<base>.0` and `<base>.1`; after each slot
/// write succeeds, `<base>.manifest` (a small text file, itself written via
/// temp+rename) is updated to point at the newest slot and to record the
/// slot file's FNV-1a digest. Recovery reads the manifest, re-hashes the
/// named slot, and falls back to the other slot if the digest does not
/// match — so a crash at any point (mid-slot-write, mid-manifest-write)
/// leaves at least one readable, verified snapshot behind.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string base) : base_(std::move(base)) {}

  const std::string& base() const { return base_; }

  /// Writes the next snapshot slot and publishes it in the manifest.
  Status Write(const MonoTable& table);

  /// Reads the newest verified snapshot. Fails if no manifest exists or
  /// neither slot verifies.
  Result<CheckpointData> ReadLatest(AggKind kind, size_t rows) const;

  /// True if a manifest exists on disk (cheap existence probe; does not
  /// verify slot integrity).
  bool HasCheckpoint() const;

  /// Snapshots published since construction.
  int64_t writes() const { return writes_; }

 private:
  std::string SlotPath(int slot) const;
  std::string ManifestPath() const;

  std::string base_;
  int next_slot_ = 0;
  int64_t writes_ = 0;
};

}  // namespace powerlog::runtime
