// Checkpoint / restore of MonoTable state — the stand-in for the paper's
// HDFS checkpointing of intermediates (fault tolerance, Fig. 6).
//
// Format (little-endian): magic, aggregate kind, row count, then the
// accumulation and intermediate columns as raw doubles, then a FNV-1a
// checksum of everything before it.
#pragma once

#include <string>

#include "common/result.h"
#include "core/mono_table.h"

namespace powerlog::runtime {

/// Writes a consistent snapshot of `table` to `path` (atomic via temp+rename).
Status WriteCheckpoint(const MonoTable& table, const std::string& path);

/// Restores `table` from `path`; validates magic, aggregate kind, row count,
/// and checksum.
Status RestoreCheckpoint(MonoTable* table, const std::string& path);

}  // namespace powerlog::runtime
