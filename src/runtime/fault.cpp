#include "runtime/fault.h"

#include <algorithm>

#include "common/string_util.h"

namespace powerlog::runtime {

FaultInjector::FaultInjector(const FaultPlan& plan, uint32_t num_workers)
    : plan_(plan) {
  send_rngs_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    send_rngs_.emplace_back(plan.seed * 0x9E3779B97F4A7C15ULL + w + 1);
  }
}

FaultInjector::WorkerFault FaultInjector::OnHeartbeat(uint32_t worker,
                                                      int64_t beats) {
  if (plan_.crash_worker == static_cast<int32_t>(worker) &&
      beats >= plan_.crash_at_beats) {
    bool expected = false;
    if (crash_fired_.compare_exchange_strong(expected, true)) {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      return WorkerFault::kCrash;
    }
  }
  if (plan_.hang_worker == static_cast<int32_t>(worker) &&
      beats >= plan_.hang_at_beats) {
    bool expected = false;
    if (hang_fired_.compare_exchange_strong(expected, true)) {
      hangs_.fetch_add(1, std::memory_order_relaxed);
      return WorkerFault::kHang;
    }
  }
  return WorkerFault::kNone;
}

bool FaultInjector::TakeBusBudget() {
  if (bus_faults_.fetch_add(1, std::memory_order_relaxed) <
      plan_.max_bus_faults) {
    return true;
  }
  bus_faults_.fetch_sub(1, std::memory_order_relaxed);
  return false;
}

FaultInjector::BusFault FaultInjector::OnSend(uint32_t from) {
  if (!plan_.bus_chaos()) return BusFault::kNone;
  Rng& rng = send_rngs_[from];
  // One draw decides the fault class so the per-sender stream stays aligned
  // regardless of which probabilities are enabled.
  const double roll = rng.NextDouble();
  if (roll < plan_.drop_prob) {
    if (TakeBusBudget()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return BusFault::kDrop;
    }
    return BusFault::kNone;
  }
  if (roll < plan_.drop_prob + plan_.duplicate_prob) {
    if (TakeBusBudget()) {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      return BusFault::kDuplicate;
    }
    return BusFault::kNone;
  }
  if (roll < plan_.drop_prob + plan_.duplicate_prob + plan_.reorder_prob) {
    if (TakeBusBudget()) {
      reordered_.fetch_add(1, std::memory_order_relaxed);
      return BusFault::kReorder;
    }
  }
  return BusFault::kNone;
}

int64_t FaultInjector::ReorderDelayUs(uint32_t from) {
  const int64_t cap = std::max<int64_t>(plan_.reorder_delay_us, 1);
  return 1 + static_cast<int64_t>(send_rngs_[from].NextBounded(
                 static_cast<uint64_t>(cap)));
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.crashes = crashes_.load(std::memory_order_relaxed);
  s.hangs = hangs_.load(std::memory_order_relaxed);
  s.messages_dropped = dropped_.load(std::memory_order_relaxed);
  s.messages_duplicated = duplicated_.load(std::memory_order_relaxed);
  s.messages_reordered = reordered_.load(std::memory_order_relaxed);
  return s;
}

namespace {

// "<worker>@<beat>" (crash) or "<worker>@<beat>x<usec>" (hang).
Status ParseTrigger(std::string_view value, bool want_duration, int32_t* worker,
                    int64_t* beats, int64_t* duration_us) {
  const auto at = Split(value, '@');
  if (at.size() != 2) {
    return Status::InvalidArgument("fault trigger needs <worker>@<beat>: " +
                                   std::string(value));
  }
  auto w = ParseInt64(at[0]);
  if (!w.ok() || *w < 0) {
    return Status::InvalidArgument("bad fault worker id: " + at[0]);
  }
  std::string beat_part = at[1];
  if (want_duration) {
    const auto x = Split(at[1], 'x');
    if (x.size() != 2) {
      return Status::InvalidArgument("hang needs <worker>@<beat>x<usec>: " +
                                     std::string(value));
    }
    beat_part = x[0];
    auto dur = ParseInt64(x[1]);
    if (!dur.ok() || *dur <= 0) {
      return Status::InvalidArgument("bad hang duration: " + x[1]);
    }
    *duration_us = *dur;
  }
  auto beat = ParseInt64(beat_part);
  if (!beat.ok() || *beat <= 0) {
    return Status::InvalidArgument("bad fault beat count: " + beat_part);
  }
  *worker = static_cast<int32_t>(*w);
  *beats = *beat;
  return Status::OK();
}

Status ParseProb(const std::string& value, double* out) {
  auto p = ParseDouble(value);
  if (!p.ok() || *p < 0.0 || *p > 1.0) {
    return Status::InvalidArgument("fault probability must be in [0,1]: " +
                                   value);
  }
  *out = *p;
  return Status::OK();
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& item : Split(spec, ',')) {
    const std::string_view trimmed = Trim(item);
    if (trimmed.empty()) continue;
    const auto kv = Split(trimmed, '=');
    if (kv.size() != 2) {
      return Status::InvalidArgument("fault plan items are key=value: " +
                                     std::string(trimmed));
    }
    const std::string key = ToLower(kv[0]);
    const std::string& value = kv[1];
    if (key == "crash") {
      POWERLOG_RETURN_NOT_OK(ParseTrigger(value, /*want_duration=*/false,
                                          &plan.crash_worker,
                                          &plan.crash_at_beats, nullptr));
    } else if (key == "hang") {
      POWERLOG_RETURN_NOT_OK(ParseTrigger(value, /*want_duration=*/true,
                                          &plan.hang_worker,
                                          &plan.hang_at_beats,
                                          &plan.hang_duration_us));
    } else if (key == "drop") {
      POWERLOG_RETURN_NOT_OK(ParseProb(value, &plan.drop_prob));
    } else if (key == "dup") {
      POWERLOG_RETURN_NOT_OK(ParseProb(value, &plan.duplicate_prob));
    } else if (key == "reorder") {
      POWERLOG_RETURN_NOT_OK(ParseProb(value, &plan.reorder_prob));
    } else if (key == "maxbus") {
      auto n = ParseInt64(value);
      if (!n.ok() || *n < 0) {
        return Status::InvalidArgument("bad maxbus: " + value);
      }
      plan.max_bus_faults = *n;
    } else if (key == "seed") {
      auto n = ParseInt64(value);
      if (!n.ok()) return Status::InvalidArgument("bad seed: " + value);
      plan.seed = static_cast<uint64_t>(*n);
    } else {
      return Status::InvalidArgument("unknown fault plan key: " + key);
    }
  }
  return plan;
}

}  // namespace powerlog::runtime
