#include "runtime/termination.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/timer.h"

namespace powerlog::runtime {

double GlobalAggregate(const MonoTable& table) {
  const bool ordered =
      table.agg_kind() == AggKind::kMin || table.agg_kind() == AggKind::kMax;
  double total = 0.0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const double v = table.accumulation(i);
    if (std::isnan(v)) return std::nan("");
    if (std::isinf(v)) {
      if (!ordered) return std::nan("");  // diverging sum program
      continue;                           // unreached key
    }
    total += v;
  }
  return total;
}

bool TerminationController::Quiescent() const {
  for (const auto& flag : *shared_->idle_flags) {
    if (flag.load(std::memory_order_acquire) == 0) return false;
  }
  if (shared_->bus->InFlightUpdates() != 0) return false;
  if (shared_->table->PendingDeltaMass() != 0.0) return false;
  return true;
}

void TerminationController::Run() {
  const EngineOptions& options = *shared_->options;
  const Kernel& kernel = *shared_->kernel;
  const double epsilon =
      options.epsilon_override >= 0
          ? options.epsilon_override
          : (kernel.termination.has_epsilon ? kernel.termination.epsilon : 0.0);
  Timer timer;
  double prev_global = std::nan("");
  int64_t prev_harvests = -1;
  int below_eps_streak = 0;

  while (!shared_->stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.term_check_interval_us));
    ++checks_;
    shared_->superstep.fetch_add(1, std::memory_order_relaxed);  // check count
    RecordTraceSample(shared_);

    // Hard wall-clock cap (divergent programs, e.g. Katz with β too large).
    if (timer.ElapsedSeconds() > options.max_wall_seconds) {
      shared_->stop.store(true, std::memory_order_release);
      return;
    }

    // Fixpoint quiescence, double-checked to close in-flight windows.
    if (Quiescent()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      if (Quiescent()) {
        shared_->converged.store(true, std::memory_order_release);
        shared_->stop.store(true, std::memory_order_release);
        return;
      }
    }

    // Epsilon criterion: the difference between two consecutive global
    // aggregation results must stay below epsilon (two checks in a row).
    // Guard against scheduler stalls: a static aggregate with no harvests in
    // between means the workers were preempted, not that the computation
    // converged — skip the sample entirely (real pending-work exhaustion is
    // caught by the quiescence check above).
    const int64_t harvests = shared_->harvests.load(std::memory_order_relaxed);
    if (epsilon > 0.0 && harvests > 0 && harvests != prev_harvests) {
      prev_harvests = harvests;
      const double global = GlobalAggregate(*shared_->table);
      if (!std::isnan(global) && !std::isnan(prev_global) &&
          std::abs(global - prev_global) < epsilon) {
        if (++below_eps_streak >= 2) {
          shared_->converged.store(true, std::memory_order_release);
          shared_->stop.store(true, std::memory_order_release);
          return;
        }
      } else {
        below_eps_streak = 0;
      }
      prev_global = global;
    }
  }
}

}  // namespace powerlog::runtime
