#include "runtime/termination.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"

namespace powerlog::runtime {

double GlobalAggregate(const MonoTable& table) {
  const bool ordered =
      table.agg_kind() == AggKind::kMin || table.agg_kind() == AggKind::kMax;
  double total = 0.0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const double v = table.accumulation(i);
    if (std::isnan(v)) return std::nan("");
    if (std::isinf(v)) {
      if (!ordered) return std::nan("");  // diverging sum program
      continue;                           // unreached key
    }
    total += v;
  }
  return total;
}

bool TerminationController::Quiescent() const {
  // A crashed worker that the supervisor has not recovered yet leaves its
  // shard wiped and its peers idle — the picture of quiescence, at the
  // wrong fixpoint. Never call that converged.
  if (shared_->control != nullptr) {
    for (const auto& ctl : *shared_->control) {
      if (ctl.dead.load(std::memory_order_acquire) != 0) return false;
    }
  }
  for (const auto& flag : *shared_->idle_flags) {
    if (flag.load(std::memory_order_acquire) == 0) return false;
  }
  // Counter protocol (see ARCHITECTURE.md): Send increments in-flight
  // *before* publishing an envelope, and workers decrement via AckDelivered
  // only *after* applying the delivered updates to the table. So reading 0
  // here (acquire, pairing with the ack's release) proves every shipped
  // update's table effect is visible to the PendingDeltaMass scan below —
  // mass can transiently double-count (in flight *and* in the table) but
  // never vanish from both.
  if (shared_->bus->InFlightUpdates() != 0) return false;
  if (shared_->table->PendingDeltaMass() != 0.0) return false;
  return true;
}

void TerminationController::Run() {
  const EngineOptions& options = *shared_->options;
  const Kernel& kernel = *shared_->kernel;
  const double epsilon =
      options.epsilon_override >= 0
          ? options.epsilon_override
          : (kernel.termination.has_epsilon ? kernel.termination.epsilon : 0.0);
  Timer timer;
  double prev_global = std::nan("");
  int64_t prev_harvests = -1;
  int below_eps_streak = 0;
  int64_t seen_generation = shared_->recovery_generation.load();

  Logger::SetThreadTag("ctl");
  if (shared_->tracer != nullptr) {
    shared_->tracer->RegisterCurrentThread("controller" +
                                           options.trace_run_tag);
  }

  while (!shared_->stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.term_check_interval_us));
    // In the async family a "superstep" is a termination check — the span
    // gives the trace the same periodic backbone sync mode gets from its
    // barrier-to-barrier spans.
    trace::SpanGuard check_span(shared_->tracer, "superstep");
    ++checks_;
    shared_->superstep.fetch_add(1, std::memory_order_relaxed);  // check count
    if (options.mode == ExecMode::kStaleSync && options.staleness_auto) {
      TuneStaleness();
    }
    RecordTraceSample(shared_);

    // Hard wall-clock cap (divergent programs, e.g. Katz with β too large).
    // Stays armed even through recovery so a wedged rollback cannot hang
    // the run forever.
    if (timer.ElapsedSeconds() > options.max_wall_seconds) {
      shared_->stop.store(true, std::memory_order_release);
      shared_->ctl_cv.notify_all();  // release any pause-parked workers
      return;
    }

    // While the supervisor holds the workers paused (checkpoint cut or
    // recovery), the table is mid-surgery: a cleared bus plus parked
    // workers looks exactly like quiescence, and the global aggregate may
    // be rolled back. Skip the sample entirely.
    if (shared_->pause_pending.load(std::memory_order_acquire) ||
        shared_->recovering.load(std::memory_order_acquire)) {
      continue;
    }
    // After a rollback the ε-streak compares a pre-recovery aggregate with
    // a post-recovery one — discard it and start fresh.
    const int64_t generation = shared_->recovery_generation.load();
    if (generation != seen_generation) {
      seen_generation = generation;
      prev_global = std::nan("");
      prev_harvests = -1;
      below_eps_streak = 0;
      continue;
    }

    // Fixpoint quiescence, double-checked to close in-flight windows.
    if (Quiescent()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      if (Quiescent()) {
        shared_->converged.store(true, std::memory_order_release);
        shared_->stop.store(true, std::memory_order_release);
        return;
      }
    }

    // Epsilon criterion: the difference between two consecutive global
    // aggregation results must stay below epsilon (two checks in a row).
    // The paper compares per-*iteration* aggregates; this sampler is
    // time-based, so it must not compare two wall-clock samples unless at
    // least one sweep's worth of harvests landed in between — under heavy
    // scheduler pressure (TSan, oversubscription) a starved run moves the
    // aggregate by less than ε per tick while still far from convergence.
    // Real pending-work exhaustion is caught by the quiescence check above.
    const int64_t harvests = shared_->harvests.load(std::memory_order_relaxed);
    const int64_t sweep = static_cast<int64_t>(shared_->table->num_rows());
    if (epsilon > 0.0 && harvests > 0 &&
        (prev_harvests < 0 || harvests - prev_harvests >= sweep)) {
      prev_harvests = harvests;
      const double global = GlobalAggregate(*shared_->table);
      if (!std::isnan(global) && !std::isnan(prev_global) &&
          std::abs(global - prev_global) < epsilon) {
        if (++below_eps_streak >= 2) {
          if (ConfirmEpsilonAtCut(epsilon)) {
            shared_->converged.store(true, std::memory_order_release);
            shared_->stop.store(true, std::memory_order_release);
            shared_->ctl_cv.notify_all();
            return;
          }
          below_eps_streak = 0;  // disproved or unavailable: back off
        }
      } else {
        below_eps_streak = 0;
      }
      prev_global = global;
    }
  }
}

void TerminationController::TuneStaleness() {
  if (shared_->worker_clock == nullptr) return;
  const double mass = shared_->table->PendingDeltaMass();
  const double prev_ema = mass_ema_ < 0.0 ? mass : mass_ema_;
  // PR-1's EMA weighting (α = 0.8 on the history).
  mass_ema_ = mass_ema_ < 0.0 ? mass : 0.8 * mass_ema_ + 0.2 * mass;
  const int64_t blocks =
      shared_->staleness_blocks.load(std::memory_order_relaxed);
  const int64_t blocked_since = blocks - tuner_prev_blocks_;
  tuner_prev_blocks_ = blocks;

  double beta_spread = 0.0;
  if (shared_->worker_beta != nullptr && !shared_->worker_beta->empty()) {
    double min_beta = std::numeric_limits<double>::infinity();
    double max_beta = 0.0;
    double sum_beta = 0.0;
    for (const auto& beta : *shared_->worker_beta) {
      const double b = beta.load(std::memory_order_relaxed);
      min_beta = std::min(min_beta, b);
      max_beta = std::max(max_beta, b);
      sum_beta += b;
    }
    const double mean =
        sum_beta / static_cast<double>(shared_->worker_beta->size());
    if (mean > 0.0) beta_spread = (max_beta - min_beta) / mean;
  }
  const int64_t bound =
      shared_->staleness_bound.load(std::memory_order_relaxed);
  int64_t skew = 0;
  int64_t slowest = -1;
  {
    int64_t min_clock = std::numeric_limits<int64_t>::max();
    int64_t max_clock = 0;
    for (size_t w = 0; w < shared_->worker_clock->size(); ++w) {
      const int64_t c =
          (*shared_->worker_clock)[w].load(std::memory_order_acquire);
      if (c < min_clock) {
        min_clock = c;
        slowest = static_cast<int64_t>(w);
      }
      max_clock = std::max(max_clock, c);
    }
    skew = max_clock - min_clock;
  }

  // Straggler identity: the candidate is defined by the gate's own
  // semantics — the minimum-clock worker is the one every fast peer parks
  // on. Its busy fraction qualifies the attribution: a slow *saturated*
  // worker (busy near 1 while real skew exists) is a placement problem the
  // rebalancer can act on; a slow idle worker is blocked on something else
  // entirely (fault, IO) and gets no flag. Only a streak across
  // consecutive checks confirms — one noisy sample must not reclassify
  // transient scheduling noise as a placement problem.
  bool persistent = false;
  if (shared_->worker_busy != nullptr && shared_->worker_busy->size() > 1 &&
      slowest >= 0 &&
      static_cast<size_t>(slowest) < shared_->worker_busy->size()) {
    const double busy =
        (*shared_->worker_busy)[slowest].load(std::memory_order_relaxed);
    const bool candidate = skew >= std::max<int64_t>(1, bound) && busy > 0.75;
    if (candidate && slowest == straggler_id_) {
      ++straggler_streak_;
    } else {
      straggler_streak_ = candidate ? 1 : 0;
      straggler_id_ = candidate ? slowest : -1;
    }
    persistent = straggler_streak_ >= 3;
    // Latched, not live: once a worker confirms, the identity sticks until
    // a *different* worker confirms. Attribution is for rebalancing after
    // the run — the drain phase dissolving the dominance signal must not
    // erase who dragged the run.
    if (persistent) {
      shared_->straggler_identity.store(straggler_id_,
                                        std::memory_order_relaxed);
    }
  }

  int64_t next = bound;
  if (mass > 1.1 * prev_ema || beta_spread > 1.0) {
    // Error is accumulating faster than it drains, or the buffer policies
    // have diverged across workers: rein the fast workers in.
    next = std::max<int64_t>(1, bound / 2);
  } else if (blocked_since > 0 && skew >= bound) {
    if (persistent) {
      // The skew traces to one persistently slow worker: widening lets the
      // fast peers drift further from a worker that is already saturated —
      // more staleness, same wall time. Hold the bound and flag the worker
      // (straggler.identity) for rebalancing instead.
      shared_->straggler_suppressed.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The gate fired while convergence held steady — the bound, not the
      // work, is the bottleneck. Let the fast workers run further ahead.
      next = std::min<int64_t>(256, bound * 2);
    }
  }
  if (next != bound) {
    shared_->staleness_bound.store(next, std::memory_order_release);
  }
}

bool TerminationController::ConfirmEpsilonAtCut(double epsilon) {
  // A flat live-sampled aggregate is necessary but not sufficient: the
  // remaining error can hide where no counter sees it — a starved worker's
  // unflushed combining buffers, or updates queued on the bus — while a hot
  // peer re-harvests near-zero changes, keeping |ΔG| < ε spuriously. The
  // only trustworthy reading is at a consistent cut, so confirm the way the
  // sum-mode checkpoint does: park everyone (buffers force-flush on the way
  // in), absorb the wire into the table, and require the now-visible
  // unapplied mass to itself be below ε.
  std::unique_lock<std::mutex> pause_lock(shared_->pause_mutex,
                                          std::try_to_lock);
  if (!pause_lock.owns_lock()) return false;  // supervisor mid-surgery
  trace::SpanGuard cut_span(shared_->tracer, "epsilon.cut");
  std::vector<uint32_t> victims;
  if (!PauseWorkers(shared_, &victims) || !victims.empty()) {
    // Stopped, or someone died during the rendezvous: resume and let the
    // supervisor run recovery; the ε streak restarts on the new generation.
    ResumeWorkers(shared_);
    return false;
  }
  UpdateBatch scratch;
  for (uint32_t w = 0; w < shared_->options->num_workers; ++w) {
    scratch.clear();
    shared_->bus->ReceiveNow(w, &scratch);
    for (const Update& u : scratch) {
      shared_->table->CombineDelta(u.key, u.value);
    }
  }
  const bool confirmed = shared_->table->PendingDeltaMass() < epsilon;
  ResumeWorkers(shared_);
  return confirmed;
}

}  // namespace powerlog::runtime
