// Re-convergence planning (ROADMAP item 2): given a converged accumulation
// column and an applied mutation batch, choose how to reach the new graph's
// fixpoint and build the warm-start state for Engine::Resume.
//
// Three paths, in decreasing order of state reuse:
//
//  * kDelta — seed ΔX directly through the combining path.
//      min/max: insertions and weight-tightenings only add or strengthen
//      derivations, so each changed edge contributes one CombineDelta seed
//      and monotonicity does the rest (the PR-4 frontier marks exactly the
//      seeded rows).
//      sum/count: for edge functions homogeneous-linear in x (F'(0)=0 and
//      F' linear in x — every multiplicative KernelOp shape), the converged
//      column satisfies x = A·x + c, so after the adjacency changes A→A'
//      the exact residual is ΔX = (A'−A)·x, computed by diffing the old and
//      new contribution rows of each changed source. Handles insertions,
//      deletions, and reweights alike, including degree-change corrections
//      across a touched source's whole edge range.
//
//  * kRederive — scoped re-derivation sweep (min/max only): a deletion or
//      loosening that currently *supports* its target invalidates every
//      value transitively derived through it. The affected set is closed
//      over the support test x[t] == F'(x[s], w, deg(s)) (derived min/max
//      values are exact F' compositions, so the test is precise up to safe
//      over-approximation); affected rows reset to X⁰ and are re-derived
//      from boundary contributions. This is the PR-2 RepropagateAll
//      machinery generalised from "all vertices" to "affected vertices".
//
//  * kRecompute — pause-and-absorb fallback: sum/count shapes whose
//      derivations cannot be retracted (non-homogeneous or unspecialised
//      F'), and degree-using min/max kernels under structural change. The
//      caller runs a cold Engine::Run on the new snapshot; the old version
//      keeps serving until the new fixpoint swaps in.
#pragma once

#include <vector>

#include "core/kernel.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "runtime/engine.h"

namespace powerlog::runtime {

enum class ReconvergePath { kDelta, kRederive, kRecompute };

const char* ReconvergePathName(ReconvergePath path);

struct ReconvergePlan {
  ReconvergePath path = ReconvergePath::kRecompute;
  /// Warm-start state for Engine::Resume (kDelta/kRederive only; empty for
  /// kRecompute — the caller runs Engine::Run cold on the new graph).
  WarmStart warm;
  /// kRederive: rows reset and re-derived by the scoped sweep.
  int64_t affected_vertices = 0;
};

/// Plans re-convergence for `kernel` after `ops` (the resolved op list from
/// ApplyMutationBatch) turned `old_graph` into `new_graph`. `x_old` is the
/// converged accumulation column on `old_graph`.
Result<ReconvergePlan> PlanReconvergence(const Kernel& kernel,
                                         const Graph& old_graph,
                                         const Graph& new_graph,
                                         const std::vector<AppliedMutation>& ops,
                                         const std::vector<double>& x_old);

}  // namespace powerlog::runtime
