// Message types exchanged between workers, with sender-side combining
// buffers (the paper's per-destination message buffers B(i,j), §5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/aggregates.h"
#include "graph/graph.h"

namespace powerlog::runtime {

/// \brief One delta contribution routed to a remote key.
struct Update {
  VertexId key;
  double value;
};

using UpdateBatch = std::vector<Update>;

/// \brief Sender-side buffer for one (source worker, destination worker)
/// pair. Contributions to the same key are combined *before* shipping —
/// lower message volume at higher batching levels is exactly the lever the
/// unified sync-async engine turns (§5.3).
///
/// Implemented as an open-addressing hash table (power-of-two capacity,
/// linear probing) rather than std::unordered_map: the remote-contribution
/// path runs once per cut edge per delta, and node-based maps pay an
/// allocation plus a pointer chase per insert. Slots and the insertion-order
/// index are retained across Drain/Clear, so the steady-state path is
/// allocation-free once the table has grown to its working size (gated by
/// bench_micro's allocs_per_M_updates counter).
class CombiningBuffer {
 public:
  /// Sentinel for an empty slot. Vertex ids are dense [0, n), so the max
  /// uint32 value never appears as a real key.
  static constexpr VertexId kEmptyKey = 0xFFFFFFFFu;

  explicit CombiningBuffer(AggKind kind) : kind_(kind) { Rehash(kMinCapacity); }

  /// Combines `value` into the pending update for `key`.
  void Add(VertexId key, double value);

  size_t size() const { return filled_.size(); }
  bool empty() const { return filled_.empty(); }

  /// Slot-array capacity (tests assert it is retained across drains).
  size_t capacity() const { return slots_.size(); }

  /// Drains the buffered updates into `out` (cleared first, capacity
  /// retained — pass a pooled batch for an allocation-free flush). Updates
  /// come out in first-insertion order: within one batch every key appears
  /// once and distinct keys land on distinct rows, so the receiver's combine
  /// order — and with it the engine's determinism — is unaffected by the
  /// switch away from map iteration order. The buffer becomes empty.
  void Drain(UpdateBatch* out);

  /// Moves the buffered updates out as a fresh batch (buffer becomes empty).
  UpdateBatch Drain();

  /// Discards the buffered updates (crash simulation: un-flushed buffers die
  /// with the worker). Capacity is retained.
  void Clear();

 private:
  struct Slot {
    VertexId key = kEmptyKey;
    double value = 0.0;
  };

  static constexpr size_t kMinCapacity = 256;  // power of two

  size_t Probe(VertexId key) const;  ///< slot holding `key`, or its free slot
  void Rehash(size_t new_capacity);

  AggKind kind_;
  std::vector<Slot> slots_;          ///< open-addressing table, pow2 size
  std::vector<uint32_t> filled_;     ///< occupied slot indices, insert order
};

/// Binary serialisation (checkpoints; stands in for the paper's ProtoStuff).
void SerializeUpdates(const UpdateBatch& batch, std::vector<uint8_t>* out);
Result<UpdateBatch> DeserializeUpdates(const uint8_t* data, size_t size);

}  // namespace powerlog::runtime
