// Message types exchanged between workers, with sender-side combining
// buffers (the paper's per-destination message buffers B(i,j), §5.3).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/aggregates.h"
#include "graph/graph.h"

namespace powerlog::runtime {

/// \brief One delta contribution routed to a remote key.
struct Update {
  VertexId key;
  double value;
};

using UpdateBatch = std::vector<Update>;

/// \brief Sender-side buffer for one (source worker, destination worker)
/// pair. Contributions to the same key are combined *before* shipping —
/// lower message volume at higher batching levels is exactly the lever the
/// unified sync-async engine turns (§5.3).
class CombiningBuffer {
 public:
  explicit CombiningBuffer(AggKind kind) : kind_(kind) {}

  /// Combines `value` into the pending update for `key`.
  void Add(VertexId key, double value);

  size_t size() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }

  /// Drains the buffered updates into `out` (cleared first, capacity
  /// retained — pass a pooled batch for an allocation-free flush). The
  /// buffer becomes empty.
  void Drain(UpdateBatch* out);

  /// Moves the buffered updates out as a fresh batch (buffer becomes empty).
  UpdateBatch Drain();

  /// Discards the buffered updates (crash simulation: un-flushed buffers die
  /// with the worker).
  void Clear() { pending_.clear(); }

 private:
  AggKind kind_;
  std::unordered_map<VertexId, double> pending_;
};

/// Binary serialisation (checkpoints; stands in for the paper's ProtoStuff).
void SerializeUpdates(const UpdateBatch& batch, std::vector<uint8_t>* out);
Result<UpdateBatch> DeserializeUpdates(const uint8_t* data, size_t size);

}  // namespace powerlog::runtime
