#include "runtime/message.h"

#include <cstring>

namespace powerlog::runtime {

void CombiningBuffer::Add(VertexId key, double value) {
  auto [it, inserted] = pending_.emplace(key, value);
  if (inserted) return;
  switch (kind_) {
    case AggKind::kMin:
      if (value < it->second) it->second = value;
      break;
    case AggKind::kMax:
      if (value > it->second) it->second = value;
      break;
    case AggKind::kSum:
    case AggKind::kCount:
      it->second += value;
      break;
    case AggKind::kMean:
      break;  // mean programs never reach the incremental runtime
  }
}

void CombiningBuffer::Drain(UpdateBatch* out) {
  out->clear();
  out->reserve(pending_.size());
  for (const auto& [key, value] : pending_) out->push_back(Update{key, value});
  pending_.clear();
}

UpdateBatch CombiningBuffer::Drain() {
  UpdateBatch batch;
  Drain(&batch);
  return batch;
}

void SerializeUpdates(const UpdateBatch& batch, std::vector<uint8_t>* out) {
  const uint64_t count = batch.size();
  const size_t offset = out->size();
  out->resize(offset + sizeof(uint64_t) + count * (sizeof(VertexId) + sizeof(double)));
  uint8_t* p = out->data() + offset;
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  for (const Update& u : batch) {
    std::memcpy(p, &u.key, sizeof(u.key));
    p += sizeof(u.key);
    std::memcpy(p, &u.value, sizeof(u.value));
    p += sizeof(u.value);
  }
}

Result<UpdateBatch> DeserializeUpdates(const uint8_t* data, size_t size) {
  if (size < sizeof(uint64_t)) return Status::IOError("truncated update batch");
  uint64_t count = 0;
  std::memcpy(&count, data, sizeof(count));
  const size_t need = sizeof(uint64_t) + count * (sizeof(VertexId) + sizeof(double));
  if (size < need) return Status::IOError("truncated update batch payload");
  UpdateBatch batch(count);
  const uint8_t* p = data + sizeof(uint64_t);
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy(&batch[i].key, p, sizeof(VertexId));
    p += sizeof(VertexId);
    std::memcpy(&batch[i].value, p, sizeof(double));
    p += sizeof(double);
  }
  return batch;
}

}  // namespace powerlog::runtime
