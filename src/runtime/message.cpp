#include "runtime/message.h"

#include <cstring>

namespace powerlog::runtime {

size_t CombiningBuffer::Probe(VertexId key) const {
  // Fibonacci hash + xor-fold: ids are dense and often sequential per sweep,
  // so the multiply spreads runs of neighbouring keys across the table.
  uint32_t h = key * 0x9E3779B9u;
  h ^= h >> 16;
  const size_t mask = slots_.size() - 1;
  size_t i = h & mask;
  while (slots_[i].key != kEmptyKey && slots_[i].key != key) {
    i = (i + 1) & mask;
  }
  return i;
}

void CombiningBuffer::Rehash(size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  std::vector<uint32_t> old_filled = std::move(filled_);
  filled_.clear();
  filled_.reserve(new_capacity / 2);
  // Re-insert in insertion order so Drain order survives the grow.
  for (uint32_t idx : old_filled) {
    const size_t i = Probe(old[idx].key);
    slots_[i] = old[idx];
    filled_.push_back(static_cast<uint32_t>(i));
  }
}

void CombiningBuffer::Add(VertexId key, double value) {
  size_t i = Probe(key);
  if (slots_[i].key == kEmptyKey) {
    // Grow at load factor 1/2 to keep probe chains short.
    if (filled_.size() + 1 > slots_.size() / 2) {
      Rehash(slots_.size() * 2);
      i = Probe(key);
    }
    slots_[i].key = key;
    slots_[i].value = value;
    filled_.push_back(static_cast<uint32_t>(i));
    return;
  }
  double& pending = slots_[i].value;
  switch (kind_) {
    case AggKind::kMin:
      if (value < pending) pending = value;
      break;
    case AggKind::kMax:
      if (value > pending) pending = value;
      break;
    case AggKind::kSum:
    case AggKind::kCount:
      pending += value;
      break;
    case AggKind::kMean:
      break;  // mean programs never reach the incremental runtime
  }
}

void CombiningBuffer::Drain(UpdateBatch* out) {
  out->clear();
  out->reserve(filled_.size());
  for (uint32_t idx : filled_) {
    out->push_back(Update{slots_[idx].key, slots_[idx].value});
    slots_[idx].key = kEmptyKey;
  }
  filled_.clear();
}

UpdateBatch CombiningBuffer::Drain() {
  UpdateBatch batch;
  Drain(&batch);
  return batch;
}

void CombiningBuffer::Clear() {
  for (uint32_t idx : filled_) slots_[idx].key = kEmptyKey;
  filled_.clear();
}

void SerializeUpdates(const UpdateBatch& batch, std::vector<uint8_t>* out) {
  const uint64_t count = batch.size();
  const size_t offset = out->size();
  out->resize(offset + sizeof(uint64_t) + count * (sizeof(VertexId) + sizeof(double)));
  uint8_t* p = out->data() + offset;
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  for (const Update& u : batch) {
    std::memcpy(p, &u.key, sizeof(u.key));
    p += sizeof(u.key);
    std::memcpy(p, &u.value, sizeof(u.value));
    p += sizeof(u.value);
  }
}

Result<UpdateBatch> DeserializeUpdates(const uint8_t* data, size_t size) {
  if (size < sizeof(uint64_t)) return Status::IOError("truncated update batch");
  uint64_t count = 0;
  std::memcpy(&count, data, sizeof(count));
  const size_t need = sizeof(uint64_t) + count * (sizeof(VertexId) + sizeof(double));
  if (size < need) return Status::IOError("truncated update batch payload");
  UpdateBatch batch(count);
  const uint8_t* p = data + sizeof(uint64_t);
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy(&batch[i].key, p, sizeof(VertexId));
    p += sizeof(VertexId);
    std::memcpy(&batch[i].value, p, sizeof(double));
    p += sizeof(double);
  }
  return batch;
}

}  // namespace powerlog::runtime
