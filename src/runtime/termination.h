// Global termination control for the async-family modes (§5.4): a master
// thread periodically merges per-worker state and decides when to stop —
// fixpoint quiescence for min/max programs, consecutive-global-aggregate
// difference below epsilon for sum programs, plus hard caps.
#pragma once

#include "runtime/worker.h"

namespace powerlog::runtime {

/// Global aggregation over the accumulation column (the per-worker local
/// results the master merges, §5.4) — the G_k of the paper's ε-termination
/// criterion |G_k − G_{k−1}| < ε. Identity infinities (unreached min/max
/// keys) are skipped, but an overflowed *sum* value means the program is
/// diverging — reports NaN so the epsilon criterion can never fire on it.
/// Shared by the async termination controller and sync-mode supersteps so
/// both paths terminate on the same criterion.
double GlobalAggregate(const MonoTable& table);

/// \brief The master's termination loop. Runs on its own thread until it
/// sets shared->stop.
class TerminationController {
 public:
  explicit TerminationController(SharedState* shared) : shared_(shared) {}

  /// Blocks until termination is decided; sets shared->stop / converged.
  void Run();

  int64_t checks_performed() const { return checks_; }

 private:
  /// All workers idle, no in-flight messages, no pending deltas — checked
  /// twice to close the harvest->buffer->send window.
  bool Quiescent() const;

  /// Confirms a live-sampled ε streak at a consistent cut (pause, absorb
  /// the wire, check unapplied mass < ε). Live samples alone can be fooled
  /// by error hiding in unflushed buffers or on the bus. Returns false —
  /// without stopping — when the cut is unavailable (supervisor busy,
  /// death mid-rendezvous) or the mass disproves convergence. In kStaleSync
  /// the pause rendezvous is also the cut where all superstep clocks agree:
  /// every worker is parked between supersteps with force-flushed buffers.
  bool ConfirmEpsilonAtCut(double epsilon);

  /// kStaleSync `--staleness=auto` controller: one adjustment per check,
  /// mirroring the PR-1 β-adaptation EMA (α = 0.8). Widens the bound when
  /// the gate blocked since the last check while pending mass held steady
  /// (the gate, not the work, is the bottleneck); tightens it when pending
  /// mass rises above its EMA or the per-worker β spread blows out
  /// (staleness is letting unapplied error pile up). Clamped to [1, 256].
  /// Straggler-aware: when the skew traces to one *persistently* dominant
  /// worker (busy fraction > 2× the runner-up for three consecutive
  /// checks), widening is suppressed — more staleness cannot speed up a
  /// saturated worker — and the identity is published for rebalancing.
  void TuneStaleness();

  SharedState* shared_;
  int64_t checks_ = 0;
  // TuneStaleness state.
  double mass_ema_ = -1.0;
  int64_t tuner_prev_blocks_ = 0;
  int64_t straggler_id_ = -1;   ///< current dominance-streak candidate
  int straggler_streak_ = 0;    ///< consecutive checks the candidate held
};

}  // namespace powerlog::runtime
