// Global termination control for the async-family modes (§5.4): a master
// thread periodically merges per-worker state and decides when to stop —
// fixpoint quiescence for min/max programs, consecutive-global-aggregate
// difference below epsilon for sum programs, plus hard caps.
#pragma once

#include "runtime/worker.h"

namespace powerlog::runtime {

/// Global aggregation over the accumulation column (the per-worker local
/// results the master merges, §5.4) — the G_k of the paper's ε-termination
/// criterion |G_k − G_{k−1}| < ε. Identity infinities (unreached min/max
/// keys) are skipped, but an overflowed *sum* value means the program is
/// diverging — reports NaN so the epsilon criterion can never fire on it.
/// Shared by the async termination controller and sync-mode supersteps so
/// both paths terminate on the same criterion.
double GlobalAggregate(const MonoTable& table);

/// \brief The master's termination loop. Runs on its own thread until it
/// sets shared->stop.
class TerminationController {
 public:
  explicit TerminationController(SharedState* shared) : shared_(shared) {}

  /// Blocks until termination is decided; sets shared->stop / converged.
  void Run();

  int64_t checks_performed() const { return checks_; }

 private:
  /// All workers idle, no in-flight messages, no pending deltas — checked
  /// twice to close the harvest->buffer->send window.
  bool Quiescent() const;

  /// Confirms a live-sampled ε streak at a consistent cut (pause, absorb
  /// the wire, check unapplied mass < ε). Live samples alone can be fooled
  /// by error hiding in unflushed buffers or on the bus. Returns false —
  /// without stopping — when the cut is unavailable (supervisor busy,
  /// death mid-rendezvous) or the mass disproves convergence.
  bool ConfirmEpsilonAtCut(double epsilon);

  SharedState* shared_;
  int64_t checks_ = 0;
};

}  // namespace powerlog::runtime
