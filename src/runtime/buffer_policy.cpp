#include "runtime/buffer_policy.h"

#include <algorithm>

#include "common/timer.h"

namespace powerlog::runtime {
namespace {

constexpr size_t kMaxTrajectorySamples = 4096;

}  // namespace

BufferPolicy::BufferPolicy(const Params& params)
    : params_(params), beta_(params.beta), last_flush_us_(NowMicros()) {}

bool BufferPolicy::ShouldFlush(size_t buffered, int64_t now_us) const {
  if (buffered == 0) return false;
  switch (params_.kind) {
    case FlushPolicyKind::kEager:
      return true;
    case FlushPolicyKind::kFixed:
    case FlushPolicyKind::kAdaptive:
      if (static_cast<double>(buffered) >= beta_) return true;
      return now_us - last_flush_us_ >= params_.tau_us;
  }
  return true;
}

void BufferPolicy::OnFlush(size_t flushed, int64_t now_us) {
  const int64_t delta_t = std::max<int64_t>(now_us - last_flush_us_, 1);
  last_flush_us_ = now_us;
  if (params_.kind != FlushPolicyKind::kAdaptive) return;
  // Accumulation rate over the window, in updates/us.
  const double rate = static_cast<double>(flushed) / static_cast<double>(delta_t);
  const double target_rate = beta_ / static_cast<double>(params_.tau_us);
  if (rate > params_.r * target_rate || rate < target_rate / params_.r) {
    // β = α · τ · |B|/ΔT — re-centre the buffer size on the observed rate.
    const double previous = beta_;
    beta_ = params_.alpha * static_cast<double>(params_.tau_us) * rate;
    beta_ = std::clamp(beta_, params_.beta_min, params_.beta_max);
    if (record_trajectory_ && beta_ != previous &&
        trajectory_.size() < kMaxTrajectorySamples) {
      trajectory_.emplace_back(now_us - trajectory_origin_us_, beta_);
    }
  }
}

void BufferPolicy::EnableTrajectory(int64_t origin_us) {
  record_trajectory_ = true;
  trajectory_origin_us_ = origin_us;
  trajectory_.clear();
  trajectory_.emplace_back(0, beta_);
}

}  // namespace powerlog::runtime
