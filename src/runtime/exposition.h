// Embedded HTTP exposition server: a dependency-free HTTP endpoint so a
// live PowerLog run can be scraped by Prometheus, curl'd by a human, or —
// since the serving plane (ISSUE 6) — queried for resident results.
//
// Deliberately minimal (ARCHITECTURE.md §5): one listener thread feeding a
// small pool of handler threads over a bounded connection queue, blocking
// accept, HTTP/1.0-style close-after-response. The engine is the hot path;
// the exposition plane must never contend with it — every built-in handler
// reads relaxed-atomic instruments or takes a concurrent ring snapshot, so a
// scrape costs the run nothing but memory bandwidth. Custom routes (the
// serving plane's /lookup, /topk, /run, /mutate) are installed via
// SetHandler and run concurrently on the handler pool, outside the built-in
// sources lock. GET and POST (with Content-Length body) are parsed; built-in
// routes answer GET only, POSTs go straight to the custom handler.
//
// Built-in routes:
//   /metrics       Prometheus text exposition format
//   /metrics.json  the existing MetricsSnapshot JSON (same shape as
//                  `powerlog_cli --metrics-json`)
//   /healthz       "ok" while the server is up
//   /trace         current Chrome trace-event snapshot (tracing enabled runs)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace powerlog {

/// Renders a MetricsSnapshot in the Prometheus text exposition format.
/// Names are prefixed `powerlog_` and sanitised to [a-zA-Z0-9_:] (so dotted
/// series names like `timeline.beta.w0`, dashes, and leading digits all
/// become valid identifiers); counters and gauges map directly, histograms
/// emit strictly cumulative `_bucket{le="..."}` rows (including `+Inf`) plus
/// `_sum` and `_count`, with `_count` equal to the `+Inf` bucket as the spec
/// requires. Series are skipped — Prometheus scrapes build their own time
/// dimension.
std::string PrometheusText(const metrics::MetricsSnapshot& snapshot);

/// \brief One parsed HTTP request as a custom route handler sees it.
/// `target` is the request target verbatim (query string included); `body`
/// is the entity body (POST with Content-Length; empty for GET).
struct HttpRequest {
  std::string method;  ///< "GET" or "POST" (others are rejected upstream)
  std::string target;
  std::string body;
};

/// \brief One HTTP response produced by a custom route handler.
struct HttpResponse {
  int status = 200;                        ///< 200, 400, 404, 503, ...
  std::string content_type = "text/plain";
  std::string body;
};

/// \brief The exposition server. Start() binds and spawns the listener plus
/// handler threads; SetSources wires the live run's data in; ClearSources
/// (or the destructor) detaches them, blocking until any in-flight request
/// drains so callbacks never outlive what they capture. Stop() → Start() on
/// the same port is supported (SO_REUSEADDR is set before bind, and Stop
/// fully resets listener/queue/thread state), so a resident server can
/// restart its catalog in place.
class ExpositionServer {
 public:
  ExpositionServer() = default;
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Source of the current metrics snapshot (serialised both as Prometheus
  /// text and as JSON).
  using MetricsFn = std::function<metrics::MetricsSnapshot()>;
  /// Source of the current Chrome trace JSON; empty string = no trace.
  using TraceFn = std::function<std::string()>;
  /// Custom route handler, consulted for any target the built-in routes do
  /// not claim (built-ins are GET-only; POSTs always reach the handler).
  /// Returns false to fall through to the 404. Runs concurrently on up to
  /// `handler_threads` threads — implementations must be thread-safe.
  using Handler = std::function<bool(const HttpRequest& req, HttpResponse*)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the listener thread
  /// plus `handler_threads` request threads. Returns the bound port.
  Result<int> Start(int port, int handler_threads = 1);

  /// Stops the listener, drains the connection queue, and joins every
  /// thread. Idempotent; the server may be Start()ed again afterwards.
  void Stop();

  /// Installs the live data sources. Thread-safe; may be called before or
  /// after Start.
  void SetSources(MetricsFn metrics_fn, TraceFn trace_fn);

  /// Detaches the data sources, blocking until any request that is mid-read
  /// completes. After this returns no callback will run again, so whatever
  /// they captured may be destroyed.
  void ClearSources();

  /// Installs the custom route handler. Must be called while the server is
  /// stopped: the handler is read without synchronisation by the handler
  /// threads (thread start/join provide the happens-before edges), which is
  /// what lets custom routes — full engine runs included — run concurrently
  /// instead of serialising on a lock.
  void SetHandler(Handler handler);

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void Serve();
  void HandlerLoop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::vector<std::thread> handler_threads_;

  /// Accepted connections waiting for a handler thread. Bounded: beyond
  /// kMaxQueuedConnections the listener sheds load by closing the socket
  /// (the client sees a reset rather than an unbounded queue).
  std::deque<int> conn_queue_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;

  std::mutex sources_mutex_;
  MetricsFn metrics_fn_;
  TraceFn trace_fn_;
  Handler handler_;
};

/// \brief RAII source attachment: wires a live run into `server` on
/// construction and detaches (blocking on in-flight requests) on
/// destruction. Null server = no-op, so call sites need no branching.
class ExpositionAttachment {
 public:
  ExpositionAttachment(ExpositionServer* server,
                       ExpositionServer::MetricsFn metrics_fn,
                       ExpositionServer::TraceFn trace_fn)
      : server_(server) {
    if (server_ != nullptr) {
      server_->SetSources(std::move(metrics_fn), std::move(trace_fn));
    }
  }
  ~ExpositionAttachment() {
    if (server_ != nullptr) server_->ClearSources();
  }

  ExpositionAttachment(const ExpositionAttachment&) = delete;
  ExpositionAttachment& operator=(const ExpositionAttachment&) = delete;

 private:
  ExpositionServer* server_;
};

}  // namespace powerlog
