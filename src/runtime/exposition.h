// Embedded HTTP exposition server: a dependency-free metrics endpoint so a
// live PowerLog run can be scraped by Prometheus or curl'd by a human.
//
// Deliberately minimal (ARCHITECTURE.md §5): one listener thread, blocking
// accept, serial request handling, HTTP/1.0-style close-after-response. The
// engine is the hot path; the exposition plane must never contend with it —
// every handler reads relaxed-atomic instruments or takes a concurrent ring
// snapshot, so a scrape costs the run nothing but memory bandwidth.
//
// Routes:
//   /metrics       Prometheus text exposition format
//   /metrics.json  the existing MetricsSnapshot JSON (same shape as
//                  `powerlog_cli --metrics-json`)
//   /healthz       "ok" while the server is up
//   /trace         current Chrome trace-event snapshot (tracing enabled runs)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/result.h"

namespace powerlog {

/// Renders a MetricsSnapshot in the Prometheus text exposition format.
/// Names are prefixed `powerlog_` and sanitised to [a-zA-Z0-9_:]; counters
/// and gauges map directly, histograms emit cumulative `_bucket{le="..."}`
/// rows (including `+Inf`) plus `_sum` and `_count`. Series are skipped —
/// Prometheus scrapes build their own time dimension.
std::string PrometheusText(const metrics::MetricsSnapshot& snapshot);

/// \brief The exposition server. Start() binds and spawns the listener
/// thread; SetSources wires the live run's data in; ClearSources (or the
/// destructor) detaches them, blocking until any in-flight request drains so
/// callbacks never outlive what they capture.
class ExpositionServer {
 public:
  ExpositionServer() = default;
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Source of the current metrics snapshot (serialised both as Prometheus
  /// text and as JSON).
  using MetricsFn = std::function<metrics::MetricsSnapshot()>;
  /// Source of the current Chrome trace JSON; empty string = no trace.
  using TraceFn = std::function<std::string()>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the listener thread.
  /// Returns the bound port.
  Result<int> Start(int port);

  /// Stops the listener and joins the thread. Idempotent.
  void Stop();

  /// Installs the live data sources. Thread-safe; may be called before or
  /// after Start.
  void SetSources(MetricsFn metrics_fn, TraceFn trace_fn);

  /// Detaches the data sources, blocking until any request that is mid-read
  /// completes. After this returns no callback will run again, so whatever
  /// they captured may be destroyed.
  void ClearSources();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void Serve();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  std::mutex sources_mutex_;
  MetricsFn metrics_fn_;
  TraceFn trace_fn_;
};

/// \brief RAII source attachment: wires a live run into `server` on
/// construction and detaches (blocking on in-flight requests) on
/// destruction. Null server = no-op, so call sites need no branching.
class ExpositionAttachment {
 public:
  ExpositionAttachment(ExpositionServer* server,
                       ExpositionServer::MetricsFn metrics_fn,
                       ExpositionServer::TraceFn trace_fn)
      : server_(server) {
    if (server_ != nullptr) {
      server_->SetSources(std::move(metrics_fn), std::move(trace_fn));
    }
  }
  ~ExpositionAttachment() {
    if (server_ != nullptr) server_->ClearSources();
  }

  ExpositionAttachment(const ExpositionAttachment&) = delete;
  ExpositionAttachment& operator=(const ExpositionAttachment&) = delete;

 private:
  ExpositionServer* server_;
};

}  // namespace powerlog
