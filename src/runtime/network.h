// In-process message bus with an explicit network cost model — the stand-in
// for the paper's OpenMPI transport on a 17-node 1.5 Gbps cluster.
//
// Every message pays a fixed latency plus a per-update cost before it
// becomes visible to the receiver. This is what makes the sync/async
// trade-off real in a single process: many small messages pay latency per
// message (penalising naive async), big batches delay data (penalising
// over-buffered execution), and barrier-based sync pays the straggler wait.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/timer.h"
#include "runtime/message.h"

namespace powerlog::metrics {
class Histogram;
}  // namespace powerlog::metrics

namespace powerlog::runtime {

class FaultInjector;

/// \brief Simulated transport parameters.
struct NetworkConfig {
  double latency_us = 150.0;     ///< fixed per-message delivery latency
  double per_update_us = 0.02;   ///< serialisation/wire cost per update
  bool instant = false;          ///< tests: deliver immediately

  /// Receiver-side CPU consumed per message / per update (dispatch +
  /// deserialisation). Unlike the delivery delay above, this is *burned* by
  /// the receiving worker, so fine-grained messaging steals compute — the
  /// effect the adaptive buffer policy (§5.3) exists to manage. Defaults to
  /// zero so correctness tests run at full speed; benches set realistic
  /// values.
  double cpu_us_per_message = 0.0;
  double cpu_us_per_update = 0.0;
};

/// \brief Aggregate transport statistics.
struct NetworkStats {
  int64_t messages = 0;
  int64_t updates = 0;
};

/// \brief N-worker mailbox fabric with delivery-time simulation.
class MessageBus {
 public:
  MessageBus(uint32_t num_workers, NetworkConfig config);

  uint32_t num_workers() const { return static_cast<uint32_t>(inboxes_.size()); }

  /// Ships a batch from `from` to `to`. Empty batches are dropped.
  void Send(uint32_t from, uint32_t to, UpdateBatch batch);

  /// Delivers every message for `worker` that has reached its delivery time.
  /// Appends into `out`; returns number of updates received.
  size_t Receive(uint32_t worker, UpdateBatch* out);

  /// Drains `worker`'s whole inbox regardless of delivery times — the
  /// supervisor's consistent-cut helper (only safe while workers are
  /// quiesced, since it collapses the simulated delivery delay).
  size_t ReceiveNow(uint32_t worker, UpdateBatch* out);

  /// Discards every queued message everywhere (recovery rollback: anything
  /// on the wire is past the restored cut). Only safe while workers are
  /// parked.
  void Clear();

  /// Chaos injection: when set, every Send consults the injector for
  /// drop/duplicate/reorder decisions. The injector must outlive the bus.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Updates shipped (Send) but not yet consumed via Receive.
  int64_t InFlightUpdates() const {
    return inflight_.load(std::memory_order_acquire);
  }

  /// True if a Receive for `worker` right now would deliver something, or
  /// messages are still in flight to it (even if not yet deliverable).
  bool HasPending(uint32_t worker) const;

  NetworkStats stats() const;

  /// Observability: when set, every consumed message records its send→receive
  /// latency (simulated delivery delay + scheduling) into `histogram`, in
  /// microseconds. The histogram must outlive the bus.
  void SetLatencyHistogram(metrics::Histogram* histogram) {
    latency_hist_ = histogram;
  }

  /// Per-(sender, receiver) traffic counts, always collected (one relaxed
  /// increment per Send into a cell only the sender writes).
  int64_t PairMessages(uint32_t from, uint32_t to) const {
    return pair_messages_[PairIndex(from, to)].load(std::memory_order_relaxed);
  }
  int64_t PairUpdates(uint32_t from, uint32_t to) const {
    return pair_updates_[PairIndex(from, to)].load(std::memory_order_relaxed);
  }

 private:
  struct Envelope {
    int64_t sent_at_us;
    int64_t deliver_at_us;
    UpdateBatch batch;
  };
  struct Inbox {
    mutable std::mutex mutex;
    std::deque<Envelope> queue;
    /// Accumulated receive-CPU debt in nanoseconds; slept off in chunks so
    /// sub-microsecond costs are not rounded up to the OS sleep quantum.
    int64_t cpu_debt_ns = 0;
  };

  size_t PairIndex(uint32_t from, uint32_t to) const {
    return static_cast<size_t>(from) * inboxes_.size() + to;
  }

  NetworkConfig config_;
  std::vector<Inbox> inboxes_;
  std::atomic<int64_t> inflight_{0};
  std::atomic<int64_t> messages_{0};
  std::atomic<int64_t> updates_{0};
  std::vector<std::atomic<int64_t>> pair_messages_;  ///< num_workers² cells
  std::vector<std::atomic<int64_t>> pair_updates_;
  metrics::Histogram* latency_hist_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace powerlog::runtime
