// In-process message bus with an explicit network cost model — the stand-in
// for the paper's OpenMPI transport on a 17-node 1.5 Gbps cluster.
//
// Every message pays a fixed latency plus a per-update cost before it
// becomes visible to the receiver. This is what makes the sync/async
// trade-off real in a single process: many small messages pay latency per
// message (penalising naive async), big batches delay data (penalising
// over-buffered execution), and barrier-based sync pays the straggler wait.
//
// Data plane (see ARCHITECTURE.md for the full memory-ordering contract):
// the fabric is a matrix of bounded single-producer/single-consumer ring
// queues, one per ordered (sender, receiver) pair. The sender thread is the
// ring's only producer and the receiving worker its only consumer, so a
// steady-state Send/Receive never takes a lock and never allocates (batches
// come from a lock-free BatchPool and are returned on delivery). Two slow
// paths keep the design honest:
//   * a per-inbox mutex + overflow deque absorbs sends that hit a full ring
//     (backpressure must never block: a sender spinning on a full ring
//     while its receiver is pause-parked would deadlock the quiesce
//     rendezvous), and
//   * ReceiveNow/Clear — the supervisor's consistent-cut helpers — take the
//     same mutex, but their real safety argument is quiescence: they run
//     only while every worker is parked, so no ring has a live consumer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/timer.h"
#include "runtime/message.h"

namespace powerlog::metrics {
class Histogram;
}  // namespace powerlog::metrics

namespace powerlog::trace {
class Tracer;
}  // namespace powerlog::trace

namespace powerlog::runtime {

class FaultInjector;

/// \brief Simulated transport parameters.
struct NetworkConfig {
  double latency_us = 150.0;     ///< fixed per-message delivery latency
  double per_update_us = 0.02;   ///< serialisation/wire cost per update
  bool instant = false;          ///< tests: deliver immediately

  /// Receiver-side CPU consumed per message / per update (dispatch +
  /// deserialisation). Unlike the delivery delay above, this is *burned* by
  /// the receiving worker, so fine-grained messaging steals compute — the
  /// effect the adaptive buffer policy (§5.3) exists to manage. Defaults to
  /// zero so correctness tests run at full speed; benches set realistic
  /// values.
  double cpu_us_per_message = 0.0;
  double cpu_us_per_update = 0.0;

  /// Envelope slots per (sender, receiver) SPSC ring; rounded up to a power
  /// of two, minimum 2. A full ring spills to the per-inbox mutex+deque
  /// overflow path (counted in NetworkStats::overflow_sends), so undersizing
  /// costs throughput, never correctness.
  uint32_t ring_slots = 1024;

  /// Pooled UpdateBatch objects shared by all senders; 0 = auto
  /// (4·workers² + 64). When the pool runs dry, Acquire falls back to a
  /// fresh heap vector (counted as a pool miss — the bench harness tracks
  /// misses as allocations per million updates).
  uint32_t pool_batches = 0;
};

/// \brief Aggregate transport statistics.
struct NetworkStats {
  int64_t messages = 0;
  int64_t updates = 0;
  int64_t overflow_sends = 0;  ///< sends that hit a full ring (slow path)
};

/// \brief Lock-free recycling pool of UpdateBatch vectors.
///
/// Batches flow pool → CombiningBuffer drain → ring envelope → receiver →
/// back to the pool, retaining their heap capacity across laps, so the
/// steady-state data plane performs no allocation. Implemented as a bounded
/// MPMC ring of cells in the style of Vyukov's queue: each cell carries a
/// sequence number that encodes both its occupancy and the lap it belongs
/// to, so Acquire and Release each cost exactly one CAS on their position
/// counter (no ABA tags, no per-node free list).
/// Multi-producer/multi-consumer: any thread may Acquire or Release.
class BatchPool {
 public:
  /// `capacity` = pooled batch slots, rounded up to a power of two
  /// (minimum 2 — the seq protocol needs it; see capacity()). Batches whose
  /// capacity exceeds `max_pooled_updates` are dropped on Release instead of
  /// cached, bounding pool memory at
  /// capacity × max_pooled_updates × sizeof(Update).
  explicit BatchPool(uint32_t capacity, size_t max_pooled_updates = 16384);

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// An empty batch, recycled (capacity retained) when available, freshly
  /// allocated otherwise.
  UpdateBatch Acquire();

  /// Returns a spent batch to the pool (cleared, capacity kept). Oversized
  /// or surplus batches are simply freed (counted as discards).
  void Release(UpdateBatch batch);

  struct Stats {
    int64_t hits = 0;      ///< Acquire served from the pool
    int64_t misses = 0;    ///< Acquire fell back to heap allocation
    int64_t discards = 0;  ///< Release dropped a batch (full / oversized)
  };
  Stats stats() const;

  uint32_t capacity() const { return static_cast<uint32_t>(nodes_.size()); }

 private:
  /// One pooled slot. `seq` follows the Vyukov protocol: a cell at ring
  /// index i is empty-and-writable for lap k when seq == enqueue position
  /// (i + k·capacity), and full-and-readable when seq == that position + 1.
  /// Writers publish `batch` with the seq store-release; readers make it
  /// visible with their seq load-acquire.
  struct Node {
    UpdateBatch batch;
    std::atomic<uint64_t> seq{0};
  };

  std::vector<Node> nodes_;  ///< power-of-two cells
  uint64_t mask_ = 0;
  size_t max_pooled_updates_;
  /// Next cell to Release into (claimed by CAS; relaxed — the cell's own
  /// seq carries the ordering).
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  /// Next cell to Acquire from (same protocol).
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
  alignas(64) std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> discards_{0};
};

/// \brief N-worker mailbox fabric with delivery-time simulation.
///
/// In-flight accounting protocol (the happens-before contract the
/// termination controller's sampler relies on — see ARCHITECTURE.md):
/// `Send` adds a batch's updates to the in-flight counters *before*
/// publishing the envelope; `Receive` hands updates to the caller but does
/// NOT decrement — the caller applies them to the MonoTable and only then
/// calls `AckDelivered`. The ack's release store paired with the sampler's
/// acquire load guarantees that whenever the sampler observes the
/// decrement, the table rows those updates touched are already visible, so
/// `InFlightUpdates() + PendingDeltaMass()` never transiently under-reports
/// unapplied mass.
class MessageBus {
 public:
  MessageBus(uint32_t num_workers, NetworkConfig config);

  uint32_t num_workers() const { return static_cast<uint32_t>(inboxes_.size()); }

  /// Ships a batch from `from` to `to`. Empty batches are dropped. Must only
  /// be called from `from`'s worker thread (SPSC producer contract).
  void Send(uint32_t from, uint32_t to, UpdateBatch batch);

  /// Delivers every message for `worker` that has reached its delivery time.
  /// Appends into `out`; returns number of updates received. Must only be
  /// called from `worker`'s thread (SPSC consumer contract). The delivered
  /// updates stay counted as in flight until AckDelivered.
  size_t Receive(uint32_t worker, UpdateBatch* out);

  /// Acknowledges that `updates` updates previously returned by Receive have
  /// been applied to the table. Decrements the in-flight counters with
  /// release ordering — the other half of the sampler's acquire edge.
  void AckDelivered(uint32_t worker, size_t updates);

  /// Drains `worker`'s whole inbox regardless of delivery times — the
  /// supervisor's consistent-cut helper (only safe while workers are
  /// quiesced, since it collapses the simulated delivery delay and violates
  /// the SPSC consumer contract otherwise). Decrements in-flight counters
  /// immediately: its callers apply the updates synchronously while every
  /// sampler skips the paused window.
  size_t ReceiveNow(uint32_t worker, UpdateBatch* out);

  /// Discards every queued message everywhere (recovery rollback: anything
  /// on the wire is past the restored cut). Only safe while workers are
  /// parked.
  void Clear();

  /// Chaos injection: when set, every Send consults the injector for
  /// drop/duplicate/reorder decisions. The injector must outlive the bus.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Updates shipped (Send) but not yet applied-and-acked via AckDelivered.
  /// Sums the per-inbox pending counters (there is deliberately no global
  /// in-flight atomic: one RMW per Send/Ack, not two). Each term individually
  /// never under-reports, so neither does the sum.
  int64_t InFlightUpdates() const {
    int64_t total = 0;
    for (const Inbox& inbox : inboxes_) {
      total += inbox.pending.load(std::memory_order_acquire);
    }
    return total;
  }

  /// True if messages are still in flight to `worker`: queued, staged,
  /// delivered-but-unacked, or not yet deliverable.
  bool HasPending(uint32_t worker) const {
    return inboxes_[worker].pending.load(std::memory_order_acquire) > 0;
  }

  NetworkStats stats() const;

  /// Recycled-batch source for senders: drain combining buffers into a
  /// pooled batch so the flush→send→deliver lap is allocation-free.
  UpdateBatch AcquireBatch() { return pool_.Acquire(); }

  BatchPool::Stats pool_stats() const { return pool_.stats(); }

  /// Observability: when set, every consumed message records its send→receive
  /// latency (simulated delivery delay + scheduling) into `histogram`, in
  /// microseconds. The histogram must outlive the bus.
  void SetLatencyHistogram(metrics::Histogram* histogram) {
    latency_hist_ = histogram;
  }

  /// Event tracing: when set, Send stamps each envelope with a fresh flow id
  /// and emits a FlowSend event on the sender's ring; Deliver emits the
  /// matching FlowRecv on the receiver's ring — the Send→Receive arrows in
  /// the exported trace. Null (the default) keeps the clock-free fast path
  /// untouched. The tracer must outlive the bus.
  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Per-(sender, receiver) traffic counts, always collected. Each cell is
  /// single-writer (only `from`'s thread sends on that pair; supervisor-side
  /// sends happen only under quiesce), so the writer uses a relaxed
  /// load+store instead of a lock-prefixed fetch_add — readers may see a
  /// slightly stale value mid-run, never a torn one. Bus-wide message and
  /// update totals (stats()) are sums over these cells.
  int64_t PairMessages(uint32_t from, uint32_t to) const {
    return pair_messages_[PairIndex(from, to)].load(std::memory_order_relaxed);
  }
  int64_t PairUpdates(uint32_t from, uint32_t to) const {
    return pair_updates_[PairIndex(from, to)].load(std::memory_order_relaxed);
  }

 private:
  struct Envelope {
    int64_t sent_at_us = 0;
    int64_t deliver_at_us = 0;
    uint64_t flow = 0;  ///< trace flow id; 0 = untraced
    UpdateBatch batch;
  };

  /// Bounded SPSC ring. `tail` is producer-owned (store-release publishes a
  /// filled slot; the consumer's load-acquire makes its contents visible);
  /// `head` is consumer-owned (store-release returns a drained slot; the
  /// producer's load-acquire proves the slot safe to overwrite). Monotone
  /// uint64 positions never wrap in practice; `slots.size()` is a power of
  /// two so `pos & mask` indexes.
  struct Ring {
    std::vector<Envelope> slots;
    size_t mask = 0;
    alignas(64) std::atomic<uint64_t> head{0};  ///< consumer position
    alignas(64) std::atomic<uint64_t> tail{0};  ///< producer position

    void Init(uint32_t min_slots);
    bool TryPush(Envelope&& e);
    bool TryPop(Envelope* out);
  };

  /// Receiver-side state. `staging`, `cpu_debt_ns` are consumer-owned (no
  /// locking; the supervisor may touch them in ReceiveNow/Clear only under
  /// quiesce). `mutex` guards the overflow deque (full-ring sends) and
  /// serialises the supervisor-side helpers against each other.
  struct Inbox {
    std::vector<Envelope> staging;  ///< popped but not yet deliverable
    int64_t cpu_debt_ns = 0;
    mutable std::mutex mutex;
    std::deque<Envelope> overflow;
    std::atomic<bool> overflow_nonempty{false};
    /// Updates sent to this inbox and not yet acked (HasPending).
    alignas(64) std::atomic<int64_t> pending{0};
  };

  size_t PairIndex(uint32_t from, uint32_t to) const {
    return static_cast<size_t>(from) * inboxes_.size() + to;
  }

  void Enqueue(uint32_t from, uint32_t to, Envelope envelope);
  /// Appends an envelope's updates to `out`, observes latency, recycles the
  /// batch. Returns the update count.
  size_t Deliver(Envelope* envelope, int64_t now, UpdateBatch* out);

  NetworkConfig config_;
  std::vector<Ring> rings_;  ///< num_workers² rings, indexed by PairIndex
  std::vector<Inbox> inboxes_;
  BatchPool pool_;
  std::atomic<int64_t> overflow_sends_{0};
  /// num_workers² cells; single-writer striped counters (see PairMessages).
  std::vector<std::atomic<int64_t>> pair_messages_;
  std::vector<std::atomic<int64_t>> pair_updates_;
  metrics::Histogram* latency_hist_ = nullptr;
  FaultInjector* injector_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace powerlog::runtime
