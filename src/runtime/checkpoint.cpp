#include "runtime/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace powerlog::runtime {
namespace {

constexpr uint64_t kMagic = 0x504F574C4F47434BULL;  // "POWLOGCK"

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void Append(std::vector<uint8_t>* buf, const void* data, size_t size) {
  const size_t offset = buf->size();
  buf->resize(offset + size);
  std::memcpy(buf->data() + offset, data, size);
}

}  // namespace

Status WriteCheckpoint(const MonoTable& table, const std::string& path) {
  std::vector<uint8_t> buf;
  const uint64_t kind = static_cast<uint64_t>(table.agg_kind());
  const uint64_t rows = table.num_rows();
  Append(&buf, &kMagic, sizeof(kMagic));
  Append(&buf, &kind, sizeof(kind));
  Append(&buf, &rows, sizeof(rows));
  const std::vector<double> x = table.SnapshotAccumulation();
  const std::vector<double> delta = table.SnapshotIntermediate();
  Append(&buf, x.data(), x.size() * sizeof(double));
  Append(&buf, delta.data(), delta.size() * sizeof(double));
  const uint64_t checksum = Fnv1a(buf.data(), buf.size());
  Append(&buf, &checksum, sizeof(checksum));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp + " for writing");
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const int close_rc = std::fclose(f);
  if (written != buf.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status RestoreCheckpoint(MonoTable* table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open checkpoint " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < static_cast<long>(4 * sizeof(uint64_t))) {
    std::fclose(f);
    return Status::IOError("checkpoint too small: " + path);
  }
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  const size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::IOError("short read from " + path);

  const size_t body = buf.size() - sizeof(uint64_t);
  uint64_t checksum = 0;
  std::memcpy(&checksum, buf.data() + body, sizeof(checksum));
  if (checksum != Fnv1a(buf.data(), body)) {
    return Status::IOError("checkpoint checksum mismatch: " + path);
  }

  uint64_t magic = 0, kind = 0, rows = 0;
  const uint8_t* p = buf.data();
  std::memcpy(&magic, p, sizeof(magic));
  p += sizeof(magic);
  std::memcpy(&kind, p, sizeof(kind));
  p += sizeof(kind);
  std::memcpy(&rows, p, sizeof(rows));
  p += sizeof(rows);
  if (magic != kMagic) return Status::IOError("bad checkpoint magic: " + path);
  if (kind != static_cast<uint64_t>(table->agg_kind())) {
    return Status::InvalidArgument("checkpoint aggregate kind mismatch");
  }
  if (rows != table->num_rows()) {
    return Status::InvalidArgument("checkpoint row count mismatch");
  }
  const size_t expect = 3 * sizeof(uint64_t) + 2 * rows * sizeof(double);
  if (body != expect) return Status::IOError("checkpoint size mismatch: " + path);

  std::vector<double> x(rows);
  std::vector<double> delta(rows);
  std::memcpy(x.data(), p, rows * sizeof(double));
  p += rows * sizeof(double);
  std::memcpy(delta.data(), p, rows * sizeof(double));
  return table->Restore(x, delta);
}

}  // namespace powerlog::runtime
