#include "runtime/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/string_util.h"

namespace powerlog::runtime {
namespace {

constexpr uint64_t kMagic = 0x504F574C4F47434BULL;  // "POWLOGCK"

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void Append(std::vector<uint8_t>* buf, const void* data, size_t size) {
  const size_t offset = buf->size();
  buf->resize(offset + size);
  std::memcpy(buf->data() + offset, data, size);
}

Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open checkpoint " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat " + path);
  }
  out->resize(static_cast<size_t>(size));
  const size_t read = std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) return Status::IOError("short read from " + path);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const void* data, size_t size) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp + " for writing");
  const size_t written = std::fwrite(data, 1, size, f);
  const int close_rc = std::fclose(f);
  if (written != size || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<CheckpointData> ParseCheckpoint(AggKind want_kind, size_t want_rows,
                                       const std::vector<uint8_t>& buf,
                                       const std::string& path) {
  if (buf.size() < 4 * sizeof(uint64_t)) {
    return Status::IOError("checkpoint too small: " + path);
  }
  const size_t body = buf.size() - sizeof(uint64_t);
  uint64_t checksum = 0;
  std::memcpy(&checksum, buf.data() + body, sizeof(checksum));
  if (checksum != Fnv1a(buf.data(), body)) {
    return Status::IOError("checkpoint checksum mismatch: " + path);
  }

  uint64_t magic = 0, kind = 0, rows = 0;
  const uint8_t* p = buf.data();
  std::memcpy(&magic, p, sizeof(magic));
  p += sizeof(magic);
  std::memcpy(&kind, p, sizeof(kind));
  p += sizeof(kind);
  std::memcpy(&rows, p, sizeof(rows));
  p += sizeof(rows);
  if (magic != kMagic) return Status::IOError("bad checkpoint magic: " + path);
  if (kind != static_cast<uint64_t>(want_kind)) {
    return Status::InvalidArgument("checkpoint aggregate kind mismatch");
  }
  if (rows != want_rows) {
    return Status::InvalidArgument("checkpoint row count mismatch");
  }
  const size_t expect = 3 * sizeof(uint64_t) + 2 * rows * sizeof(double);
  if (body != expect) return Status::IOError("checkpoint size mismatch: " + path);

  CheckpointData data;
  data.x.resize(rows);
  data.delta.resize(rows);
  std::memcpy(data.x.data(), p, rows * sizeof(double));
  p += rows * sizeof(double);
  std::memcpy(data.delta.data(), p, rows * sizeof(double));
  return data;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

Status WriteCheckpoint(const MonoTable& table, const std::string& path) {
  std::vector<uint8_t> buf;
  const uint64_t kind = static_cast<uint64_t>(table.agg_kind());
  const uint64_t rows = table.num_rows();
  Append(&buf, &kMagic, sizeof(kMagic));
  Append(&buf, &kind, sizeof(kind));
  Append(&buf, &rows, sizeof(rows));
  const std::vector<double> x = table.SnapshotAccumulation();
  const std::vector<double> delta = table.SnapshotIntermediate();
  Append(&buf, x.data(), x.size() * sizeof(double));
  Append(&buf, delta.data(), delta.size() * sizeof(double));
  const uint64_t checksum = Fnv1a(buf.data(), buf.size());
  Append(&buf, &checksum, sizeof(checksum));
  return WriteFileAtomic(path, buf.data(), buf.size());
}

Status RestoreCheckpoint(MonoTable* table, const std::string& path) {
  auto data = ReadCheckpoint(table->agg_kind(), table->num_rows(), path);
  if (!data.ok()) return data.status();
  return table->Restore(data->x, data->delta);
}

Result<CheckpointData> ReadCheckpoint(AggKind kind, size_t rows,
                                      const std::string& path) {
  std::vector<uint8_t> buf;
  POWERLOG_RETURN_NOT_OK(ReadFile(path, &buf));
  return ParseCheckpoint(kind, rows, buf, path);
}

std::string CheckpointStore::SlotPath(int slot) const {
  return base_ + "." + std::to_string(slot);
}

std::string CheckpointStore::ManifestPath() const { return base_ + ".manifest"; }

Status CheckpointStore::Write(const MonoTable& table) {
  const int slot = next_slot_;
  const std::string slot_path = SlotPath(slot);
  POWERLOG_RETURN_NOT_OK(WriteCheckpoint(table, slot_path));

  // Hash the slot file as written so the manifest can vouch for it byte-wise
  // (catches truncation the in-file checksum would also catch, plus a
  // manifest pointing at a stale slot from an older run).
  std::vector<uint8_t> buf;
  POWERLOG_RETURN_NOT_OK(ReadFile(slot_path, &buf));
  const uint64_t digest = Fnv1a(buf.data(), buf.size());

  const std::string manifest = "powerlog-checkpoint v1\nslot " +
                               std::to_string(slot) + "\ncrc " +
                               std::to_string(digest) + "\n";
  POWERLOG_RETURN_NOT_OK(
      WriteFileAtomic(ManifestPath(), manifest.data(), manifest.size()));
  next_slot_ = 1 - slot;
  ++writes_;
  return Status::OK();
}

Result<CheckpointData> CheckpointStore::ReadLatest(AggKind kind,
                                                   size_t rows) const {
  if (!HasCheckpoint()) {
    return Status::NotFound("no checkpoint manifest at " + ManifestPath());
  }
  std::vector<uint8_t> mbuf;
  POWERLOG_RETURN_NOT_OK(ReadFile(ManifestPath(), &mbuf));
  const std::string text(mbuf.begin(), mbuf.end());
  int slot = -1;
  uint64_t crc = 0;
  bool have_crc = false;
  for (const std::string& raw : Split(text, '\n')) {
    const std::vector<std::string> parts = Split(Trim(raw), ' ');
    if (parts.size() != 2) continue;
    if (parts[0] == "slot") {
      auto v = ParseInt64(parts[1]);
      if (v.ok()) slot = static_cast<int>(*v);
    } else if (parts[0] == "crc") {
      char* end = nullptr;
      const uint64_t v = std::strtoull(parts[1].c_str(), &end, 10);
      if (end != nullptr && *end == '\0') {
        crc = v;
        have_crc = true;
      }
    }
  }
  if (slot != 0 && slot != 1) {
    return Status::IOError("malformed checkpoint manifest: " + ManifestPath());
  }

  // Preferred slot first, then the other as fallback: a torn slot write (the
  // manifest still names the previous slot) or a corrupted preferred slot
  // must not lose the older good snapshot.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int s = attempt == 0 ? slot : 1 - slot;
    const std::string path = SlotPath(s);
    std::vector<uint8_t> buf;
    if (!ReadFile(path, &buf).ok()) continue;
    if (attempt == 0 && have_crc && Fnv1a(buf.data(), buf.size()) != crc) {
      continue;  // manifest disagrees with the bytes on disk
    }
    auto data = ParseCheckpoint(kind, rows, buf, path);
    if (data.ok()) return data;
  }
  return Status::IOError("no verifiable checkpoint slot under " + base_);
}

bool CheckpointStore::HasCheckpoint() const {
  return FileExists(ManifestPath());
}

}  // namespace powerlog::runtime
