#include "runtime/reconverge.h"

#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace powerlog::runtime {

namespace {

/// F'(0) == 0 and F' linear in x: exactly the multiplicative specialized
/// shapes. Under these, a converged sum/count column satisfies x = A·x + c,
/// so adjacency edits have the closed-form residual (A'−A)·x.
bool HomogeneousInX(KernelOp op) {
  switch (op) {
    case KernelOp::kX:
    case KernelOp::kXTimesW:
    case KernelOp::kXTimesA:
    case KernelOp::kXOverDeg:
    case KernelOp::kAXOverDeg:
    case KernelOp::kXOverDegA:
    case KernelOp::kAXW:
    case KernelOp::kAXWB:
      return true;
    case KernelOp::kGeneric:
    case KernelOp::kConst:
    case KernelOp::kXPlusW:
    case KernelOp::kXPlusA:
      return false;
  }
  return false;
}

/// One net edge change in *propagation* orientation: `s` is the vertex whose
/// accumulated value feeds F', `t` receives the contribution.
struct EdgeChange {
  VertexId s = 0;
  VertexId t = 0;
  double weight = 0.0;
};

/// Net multiset diff of the base adjacency of every source an applied op
/// touched. Diffing old vs. new resolves intra-batch interactions (insert
/// then delete, repeated reweights, parallel edges) that per-op records
/// cannot: only what actually differs between the snapshots matters.
struct EdgeDiff {
  std::vector<EdgeChange> removed;  ///< in old graph, not in new
  std::vector<EdgeChange> added;    ///< in new graph, not in old
  std::vector<VertexId> degree_changed;  ///< base out-degree differs
};

EdgeDiff DiffTouchedSources(const Graph& old_graph, const Graph& new_graph,
                            const std::vector<AppliedMutation>& ops,
                            bool uses_in_edges) {
  std::set<VertexId> touched;
  for (const AppliedMutation& rec : ops) {
    if (rec.applied) touched.insert(rec.op.src);
  }
  EdgeDiff diff;
  for (VertexId u : touched) {
    // Multiset of (dst, weight) — positive counts are old-only edges,
    // negative counts new-only. Bit-exact weight keys are fine: surviving
    // edges carry the identical double through the CSR rebuild.
    std::map<std::pair<VertexId, double>, int64_t> counts;
    for (const Edge& e : old_graph.OutEdges(u)) ++counts[{e.dst, e.weight}];
    for (const Edge& e : new_graph.OutEdges(u)) --counts[{e.dst, e.weight}];
    for (const auto& [key, count] : counts) {
      const VertexId s = uses_in_edges ? key.first : u;
      const VertexId t = uses_in_edges ? u : key.first;
      for (int64_t i = 0; i < count; ++i)
        diff.removed.push_back({s, t, key.second});
      for (int64_t i = 0; i < -count; ++i)
        diff.added.push_back({s, t, key.second});
    }
    if (old_graph.OutDegree(u) != new_graph.OutDegree(u)) {
      diff.degree_changed.push_back(u);
    }
  }
  return diff;
}

/// Plans sum/count: exact residual seeding for homogeneous-linear F'.
Result<ReconvergePlan> PlanSum(const Kernel& kernel, const Graph& old_graph,
                               const Graph& new_graph, const EdgeDiff& diff,
                               const std::vector<double>& x_old) {
  ReconvergePlan plan;
  if (!HomogeneousInX(kernel.scatter.op)) {
    // F'(0) != 0 (or unspecialised bytecode we cannot certify): settled
    // contributions cannot be retracted by subtraction — pause-and-absorb.
    plan.path = ReconvergePath::kRecompute;
    return plan;
  }

  // Prop-sources whose contribution row changed: the source end of every
  // changed base edge, plus — when F' reads degree — every vertex whose base
  // out-degree moved (its *entire* row renormalises, even edges it kept).
  std::set<VertexId> changed_sources;
  for (const EdgeChange& c : diff.removed) changed_sources.insert(c.s);
  for (const EdgeChange& c : diff.added) changed_sources.insert(c.s);
  if (kernel.uses_degree) {
    for (VertexId u : diff.degree_changed) changed_sources.insert(u);
  }

  const Graph& old_prop =
      kernel.uses_in_edges ? old_graph.Reverse() : old_graph;
  const Graph& new_prop =
      kernel.uses_in_edges ? new_graph.Reverse() : new_graph;

  plan.path = ReconvergePath::kDelta;
  plan.warm.x = x_old;
  plan.warm.delta.assign(x_old.size(), 0.0);
  for (VertexId s : changed_sources) {
    const double x = x_old[s];
    if (x == 0.0) continue;  // homogeneous: zero rows contribute nothing
    if (!std::isfinite(x)) {
      // A diverged/overflowed column has no usable residual.
      plan.path = ReconvergePath::kRecompute;
      plan.warm = WarmStart{};
      return plan;
    }
    // ΔX[t] += (A' − A)·x restricted to row-of-s: retract the old
    // contributions, assert the new ones. degree() always means base
    // out-degree of the prop-source (kernel.cpp), per respective snapshot.
    const double old_deg = static_cast<double>(old_graph.OutDegree(s));
    for (const Edge& e : old_prop.OutEdges(s)) {
      plan.warm.delta[e.dst] -= kernel.EvalEdge(x, e.weight, old_deg);
    }
    const double new_deg = static_cast<double>(new_graph.OutDegree(s));
    for (const Edge& e : new_prop.OutEdges(s)) {
      plan.warm.delta[e.dst] += kernel.EvalEdge(x, e.weight, new_deg);
    }
  }
  return plan;
}

/// Plans min/max: delta seeding when no removed edge supports its target,
/// scoped re-derivation of the supported closure otherwise.
Result<ReconvergePlan> PlanOrdered(const Kernel& kernel, const Graph& old_graph,
                                   const Graph& new_graph, EdgeDiff diff,
                                   const std::vector<double>& x_old) {
  ReconvergePlan plan;
  const Aggregator agg(kernel.agg);
  const double identity = *agg.Identity();
  const VertexId n = old_graph.num_vertices();

  if (kernel.uses_degree && !diff.degree_changed.empty()) {
    // A moved degree shifts *every* contribution of that source, upward or
    // downward — retraction territory with no catalog kernel to motivate a
    // sharper rule. Conservative fallback.
    plan.path = ReconvergePath::kRecompute;
    return plan;
  }

  // A removed contribution only matters if it could have *supported* its
  // target. Mask removals whose (s, t) pair still gets an equal-or-better
  // contribution from the new graph — the common case for reweights that
  // tighten and for deleting one of several parallel edges.
  const Graph& new_prop =
      kernel.uses_in_edges ? new_graph.Reverse() : new_graph;
  auto best_new_contribution = [&](VertexId s, VertexId t) {
    double best = identity;
    const double deg = static_cast<double>(new_graph.OutDegree(s));
    for (const Edge& e : new_prop.OutEdges(s)) {
      if (e.dst != t) continue;
      const double c = kernel.EvalEdge(x_old[s], e.weight, deg);
      if (best == identity || agg.Improves(best, c)) best = c;
    }
    return best;
  };

  std::vector<EdgeChange> losses;
  for (const EdgeChange& c : diff.removed) {
    if (x_old[c.s] == identity) continue;  // never contributed
    const double old_deg = static_cast<double>(old_graph.OutDegree(c.s));
    const double c_rem = kernel.EvalEdge(x_old[c.s], c.weight, old_deg);
    const double c_new = best_new_contribution(c.s, c.t);
    if (c_new != identity && (c_new == c_rem || agg.Improves(c_rem, c_new))) {
      continue;  // masked: the pair still derives at least as strong a value
    }
    losses.push_back(c);
  }

  // Support test: min/max fixpoint values are exact F' compositions, so a
  // removed edge held up its target iff the bit patterns match.
  std::vector<char> affected(n, 0);
  std::deque<VertexId> frontier;
  for (const EdgeChange& c : losses) {
    const double old_deg = static_cast<double>(old_graph.OutDegree(c.s));
    if (x_old[c.t] == kernel.EvalEdge(x_old[c.s], c.weight, old_deg) &&
        !affected[c.t]) {
      affected[c.t] = 1;
      frontier.push_back(c.t);
    }
  }

  auto fold_delta = [&](std::vector<double>& delta, VertexId v, double value) {
    delta[v] = delta[v] == identity ? value : *agg.Combine(delta[v], value);
  };

  if (frontier.empty()) {
    // Pure gain: every surviving change adds or strengthens derivations.
    // Seed the new contributions and let monotone combining do the rest.
    plan.path = ReconvergePath::kDelta;
    plan.warm.x = x_old;
    plan.warm.delta.assign(n, identity);
    for (const EdgeChange& c : diff.added) {
      if (x_old[c.s] == identity) continue;
      const double deg = static_cast<double>(new_graph.OutDegree(c.s));
      fold_delta(plan.warm.delta, c.t,
                 kernel.EvalEdge(x_old[c.s], c.weight, deg));
    }
    return plan;
  }

  // Scoped re-derivation (PR-2's RepropagateAll, narrowed): close the
  // affected set over the old derivation structure — anything whose value is
  // an F' image of an affected value may have been derived through it.
  const Graph& old_prop =
      kernel.uses_in_edges ? old_graph.Reverse() : old_graph;
  while (!frontier.empty()) {
    const VertexId t = frontier.front();
    frontier.pop_front();
    if (x_old[t] == identity) continue;
    const double deg = static_cast<double>(old_graph.OutDegree(t));
    for (const Edge& e : old_prop.OutEdges(t)) {
      if (affected[e.dst]) continue;
      if (x_old[e.dst] == kernel.EvalEdge(x_old[t], e.weight, deg)) {
        affected[e.dst] = 1;
        frontier.push_back(e.dst);
      }
    }
  }

  POWERLOG_ASSIGN_OR_RETURN(std::vector<double> x0, ComputeX0(kernel, n));
  plan.path = ReconvergePath::kRederive;
  plan.warm.x = x_old;
  plan.warm.delta.assign(n, identity);
  for (VertexId v = 0; v < n; ++v) {
    if (!affected[v]) continue;
    ++plan.affected_vertices;
    plan.warm.x[v] = x0[v];  // X⁰ is graph-independent — safe to reuse
    // Re-seed the non-recursive bodies of F for the reset row, exactly as
    // cold ComputeInitialState does.
    if (!kernel.init.iteration_indexed && x0[v] != identity) {
      fold_delta(plan.warm.delta, v, x0[v]);
    }
    if (kernel.constant.kind == datalog::ConstKind::kAllVertices) {
      fold_delta(plan.warm.delta, v, kernel.constant.value);
    } else if (kernel.constant.kind == datalog::ConstKind::kSingleKey &&
               kernel.constant.key == v) {
      fold_delta(plan.warm.delta, v, kernel.constant.value);
    }
  }
  // Boundary scan: every surviving in-contribution of an affected row, from
  // the *new* graph, evaluated at the seed column. Reset sources seed their
  // X⁰ image now and re-propagate as they re-derive.
  for (VertexId s = 0; s < n; ++s) {
    if (plan.warm.x[s] == identity) continue;
    const double deg = static_cast<double>(new_graph.OutDegree(s));
    for (const Edge& e : new_prop.OutEdges(s)) {
      if (!affected[e.dst]) continue;
      fold_delta(plan.warm.delta, e.dst,
                 kernel.EvalEdge(plan.warm.x[s], e.weight, deg));
    }
  }
  // Gains landing *outside* the affected set still need their seeds (the
  // boundary scan above only feeds affected rows).
  for (const EdgeChange& c : diff.added) {
    if (affected[c.t] || plan.warm.x[c.s] == identity) continue;
    const double deg = static_cast<double>(new_graph.OutDegree(c.s));
    fold_delta(plan.warm.delta, c.t,
               kernel.EvalEdge(plan.warm.x[c.s], c.weight, deg));
  }
  return plan;
}

}  // namespace

const char* ReconvergePathName(ReconvergePath path) {
  switch (path) {
    case ReconvergePath::kDelta: return "delta";
    case ReconvergePath::kRederive: return "rederive";
    case ReconvergePath::kRecompute: return "recompute";
  }
  return "?";
}

Result<ReconvergePlan> PlanReconvergence(
    const Kernel& kernel, const Graph& old_graph, const Graph& new_graph,
    const std::vector<AppliedMutation>& ops,
    const std::vector<double>& x_old) {
  if (old_graph.num_vertices() != new_graph.num_vertices()) {
    return Status::InvalidArgument(
        "snapshots in one version chain must share a vertex set");
  }
  if (x_old.size() != old_graph.num_vertices()) {
    return Status::InvalidArgument(
        "converged column must have one entry per vertex");
  }
  EdgeDiff diff =
      DiffTouchedSources(old_graph, new_graph, ops, kernel.uses_in_edges);
  switch (kernel.agg) {
    case AggKind::kMin:
    case AggKind::kMax:
      return PlanOrdered(kernel, old_graph, new_graph, std::move(diff), x_old);
    case AggKind::kSum:
    case AggKind::kCount:
      return PlanSum(kernel, old_graph, new_graph, diff, x_old);
    case AggKind::kMean:
      break;
  }
  return Status::InvalidArgument("mean has no incremental form (§2.3)");
}

}  // namespace powerlog::runtime
