// Message-passing frequency control (§5.3).
//
// Three policies:
//  * Fixed:    flush whenever |B(i,j)| >= β or the interval τ elapses — the
//              plain async engine and the AAP baseline's fixed-size buffer.
//  * Adaptive: the paper's rule — if updates accumulate fast
//              (|B|/ΔT > r·β/τ) grow β to β = α·τ·|B|/ΔT; if slow, shrink
//              the same way. α = 0.8, r = 2 (paper's settings). Each worker
//              adapts independently per destination; no global information.
//  * Eager:    flush on every update (maximum asynchrony).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace powerlog::runtime {

enum class FlushPolicyKind { kEager, kFixed, kAdaptive };

/// \brief Per-(i,j) flush decision state.
class BufferPolicy {
 public:
  struct Params {
    FlushPolicyKind kind = FlushPolicyKind::kAdaptive;
    double beta = 256.0;       ///< initial message size β(i,j)
    int64_t tau_us = 500;      ///< message-passing interval τ
    double alpha = 0.8;        ///< damping factor (fixed to 0.8 in the paper)
    double r = 2.0;            ///< adjustment trigger ratio (2 in the paper)
    double beta_min = 1.0;
    double beta_max = 262144.0;
  };

  BufferPolicy() : BufferPolicy(Params{}) {}
  explicit BufferPolicy(const Params& params);

  /// Should the buffer holding `buffered` updates be flushed now?
  bool ShouldFlush(size_t buffered, int64_t now_us) const;

  /// Records a flush of `flushed` updates and adapts β (adaptive only).
  void OnFlush(size_t flushed, int64_t now_us);

  double beta() const { return beta_; }

  /// One recorded β value: (microseconds since `origin_us`, β).
  using BetaSample = std::pair<int64_t, double>;

  /// Starts recording the β trajectory (observability): the initial β plus
  /// every adaptation, timestamped relative to `origin_us`. Bounded to a few
  /// thousand samples so pathological runs cannot balloon memory.
  void EnableTrajectory(int64_t origin_us);

  const std::vector<BetaSample>& trajectory() const { return trajectory_; }

 private:
  Params params_;
  double beta_;
  int64_t last_flush_us_ = 0;
  bool record_trajectory_ = false;
  int64_t trajectory_origin_us_ = 0;
  std::vector<BetaSample> trajectory_;
};

}  // namespace powerlog::runtime
