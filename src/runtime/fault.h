// Deterministic chaos injection for the runtime — the stand-in for the
// worker crashes, GC hangs, and lossy links a 17-node cluster produces for
// free. A FaultPlan describes *what* to break; a FaultInjector is the
// per-run state machine the workers and the message bus consult, so the
// same plan + seed reproduces the same faults (chaos tests are replayable).
//
// Worker faults are one-shot and fire at a worker's Nth control-loop
// heartbeat; bus faults are Bernoulli per Send with a per-sender RNG stream
// (sender threads never contend on shared randomness) and a global cap so a
// bounded chaos window can be followed by verified recovery.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace powerlog::runtime {

/// \brief Declarative description of the faults to inject into one run.
struct FaultPlan {
  // One-shot worker faults, triggered when the victim's heartbeat counter
  // (one beat per worker control-loop iteration) reaches the given count.
  int32_t crash_worker = -1;       ///< worker id to kill; -1 disables
  int64_t crash_at_beats = 50;     ///< victim heartbeat count that triggers it
  int32_t hang_worker = -1;        ///< worker id to hang; -1 disables
  int64_t hang_at_beats = 50;
  int64_t hang_duration_us = 20000;

  // Bus-level chaos, rolled per Send from a per-sender deterministic stream.
  double drop_prob = 0.0;         ///< message silently discarded
  double duplicate_prob = 0.0;    ///< message delivered twice
  double reorder_prob = 0.0;      ///< message delayed so later sends overtake
  int64_t reorder_delay_us = 500; ///< max extra delay for a reordered message
  int64_t max_bus_faults = INT64_MAX;  ///< total cap across drop/dup/reorder

  uint64_t seed = 0xFA17;

  bool enabled() const {
    return crash_worker >= 0 || hang_worker >= 0 || drop_prob > 0.0 ||
           duplicate_prob > 0.0 || reorder_prob > 0.0;
  }
  bool bus_chaos() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || reorder_prob > 0.0;
  }
};

/// Parses a comma-separated plan spec (the CLI's --fault-plan):
///   crash=<worker>@<beat>            kill worker at its Nth heartbeat
///   hang=<worker>@<beat>x<usec>      pause worker for usec at beat N
///   drop=<p> dup=<p> reorder=<p>     per-send probabilities in [0,1]
///   maxbus=<n>                       cap on total injected bus faults
///   seed=<n>                         RNG seed
/// Example: "crash=1@200,drop=0.02,maxbus=50,seed=7".
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

/// \brief Counters of faults actually injected (all relaxed atomic reads).
struct FaultStats {
  int64_t crashes = 0;
  int64_t hangs = 0;
  int64_t messages_dropped = 0;
  int64_t messages_duplicated = 0;
  int64_t messages_reordered = 0;

  int64_t total() const {
    return crashes + hangs + messages_dropped + messages_duplicated +
           messages_reordered;
  }
};

/// \brief Per-run fault state machine. Thread-safe: worker faults use
/// one-shot atomics; bus faults draw from per-sender RNG streams that only
/// that sender's thread touches.
class FaultInjector {
 public:
  enum class WorkerFault { kNone, kCrash, kHang };
  enum class BusFault { kNone, kDrop, kDuplicate, kReorder };

  FaultInjector(const FaultPlan& plan, uint32_t num_workers);

  const FaultPlan& plan() const { return plan_; }

  /// Called by worker `worker` once per control-loop iteration with its
  /// monotone heartbeat count; returns the fault to act on (one-shot).
  WorkerFault OnHeartbeat(uint32_t worker, int64_t beats);

  /// Called by the bus for every Send from `from`. Rolls the chaos dice.
  BusFault OnSend(uint32_t from);

  /// Extra delivery delay for a message selected for reordering, in [1,
  /// reorder_delay_us], from the sender's stream.
  int64_t ReorderDelayUs(uint32_t from);

  FaultStats stats() const;

 private:
  bool TakeBusBudget();

  FaultPlan plan_;
  std::vector<Rng> send_rngs_;  ///< one stream per sender, untouched by peers
  std::atomic<bool> crash_fired_{false};
  std::atomic<bool> hang_fired_{false};
  std::atomic<int64_t> bus_faults_{0};
  std::atomic<int64_t> crashes_{0};
  std::atomic<int64_t> hangs_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> duplicated_{0};
  std::atomic<int64_t> reordered_{0};
};

}  // namespace powerlog::runtime
