// Worker threads of the unified sync-async engine (Fig. 8) and the shared
// run state they operate on.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/kernel.h"
#include "core/mono_table.h"
#include "graph/partition.h"
#include "runtime/buffer_policy.h"
#include "runtime/engine.h"
#include "runtime/network.h"

namespace powerlog::runtime {

/// \brief State shared by all workers and the master for one run.
struct SharedState {
  const Graph* graph = nullptr;
  const Graph* prop = nullptr;  ///< propagation graph (reverse if pulling)
  const Kernel* kernel = nullptr;
  MonoTable* table = nullptr;
  const Partitioner* partition = nullptr;
  MessageBus* bus = nullptr;
  const EngineOptions* options = nullptr;

  std::atomic<bool> stop{false};
  std::atomic<bool> converged{false};

  // Statistics.
  std::atomic<int64_t> harvests{0};
  std::atomic<int64_t> edge_applications{0};

  // Sync mode.
  Barrier* barrier = nullptr;            ///< all workers
  std::atomic<int64_t> superstep{0};
  std::atomic<int64_t> superstep_work{0};  ///< useful harvests this superstep
  std::atomic<double> bucket_limit{0.0};   ///< Δ-stepping current bucket bound

  // Sync-mode ε-termination state: the global aggregate across supersteps
  // (|G_k − G_{k−1}| < ε, two consecutive). Touched only inside the serial
  // decision section between the second and third barriers, so plain fields
  // are safe — the barrier's mutex hands them off across supersteps.
  double sync_prev_global = std::numeric_limits<double>::quiet_NaN();
  int sync_eps_streak = 0;

  // Async modes: per-worker idle flags for quiescence detection.
  std::vector<std::atomic<uint8_t>>* idle_flags = nullptr;

  // Observability (options->collect_metrics): shared histograms the workers
  // and bus feed; null when collection is off.
  metrics::Histogram* flush_size_hist = nullptr;

  // Convergence trace (options->record_trace): guarded by trace_mutex.
  std::mutex trace_mutex;
  std::vector<TraceSample> trace;
  int64_t start_us = 0;
};

/// Appends a trace sample (no-op unless recording). Thread-safe.
void RecordTraceSample(SharedState* shared);

/// \brief One worker: owns a shard of the key space, processes deltas, and
/// routes remote contributions through per-destination combining buffers.
class Worker {
 public:
  Worker(uint32_t id, SharedState* shared);

  /// Entry point; dispatches on the engine mode.
  void Run();

  /// Per-worker execution breakdown; read after the worker thread joins.
  const WorkerStats& stats() const { return stats_; }

  /// Appends this worker's β-trajectory series ("buffer.beta.w<i>_to_w<j>")
  /// to `snap`. Call after the worker thread joins.
  void ExportMetrics(metrics::MetricsSnapshot* snap) const;

 private:
  void RunSync();
  void RunAsyncLike();  // kAsync / kAap / kSyncAsync

  /// Drains the inbox into the MonoTable. Returns updates applied.
  size_t DrainInbox();

  /// Harvests one vertex's delta and propagates it. Returns true if the
  /// delta was useful (actually propagated).
  bool ProcessVertex(VertexId v);

  /// Sends buffers per policy; `force` flushes everything (barrier).
  void FlushBuffers(bool force);

  /// Barrier arrival, accounting the straggler wait when metrics are on.
  bool ArriveAndWaitTimed();

  uint32_t id_;
  SharedState* shared_;
  std::vector<VertexId> owned_;
  // Outgoing buffers/policies are indexed by *peer slot*, not worker id: a
  // worker never messages itself (local contributions go straight into the
  // MonoTable), so there are num_workers-1 buffers and peers_[slot] maps a
  // slot back to the destination worker id.
  std::vector<uint32_t> peers_;
  std::vector<CombiningBuffer> out_buffers_;  ///< one per peer
  std::vector<BufferPolicy> policies_;
  UpdateBatch inbox_scratch_;
  WorkerStats stats_;
  bool collect_metrics_ = false;
  bool adaptive_priority_ = false;  ///< §5.4 EMA priority (async family only)
  int64_t idle_scans_ = 0;  ///< consecutive no-work scans (threshold decay)
  int64_t compute_debt_ns_ = 0;  ///< accumulated inflation cost to sleep off
  // Adaptive priority (§5.4): moving average of pending |delta| magnitudes.
  double priority_ema_ = 0.0;
  double scan_abs_sum_ = 0.0;
  int64_t scan_count_ = 0;
  // Environment-noise stalls.
  void MaybeStall();
  Rng stall_rng_;
  int64_t next_stall_us_ = 0;
};

}  // namespace powerlog::runtime
