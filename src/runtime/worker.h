// Worker threads of the unified sync-async engine (Fig. 8) and the shared
// run state they operate on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/kernel.h"
#include "core/mono_table.h"
#include "graph/partition.h"
#include "runtime/buffer_policy.h"
#include "runtime/engine.h"
#include "runtime/network.h"

namespace powerlog::runtime {

class CheckpointStore;

/// \brief Supervisor-facing control block, one per worker id. The liveness
/// contract: a healthy worker bumps `heartbeat` at least once per control
/// iteration; a crash fault sets `dead`; `incarnation` is the fencing token
/// — the supervisor bumps it before respawning, and any older incarnation
/// that wakes up (a hung zombie) compares its own token, finds itself
/// fenced, and exits without flushing a single buffered update.
struct WorkerControl {
  std::atomic<int64_t> heartbeat{0};
  std::atomic<uint8_t> waiting{0};  ///< parked at a barrier / pause point
  /// Death ledger: 0 = alive; 1 = crash in progress (victim still wiping
  /// its shard — recovery must wait); 2 = crash complete (safe to restore);
  /// 3 = hung, marked by the supervisor (the zombie never writes again).
  /// Readers other than Recover only care about zero vs non-zero.
  std::atomic<uint8_t> dead{0};
  std::atomic<int64_t> incarnation{0};
};

/// \brief Per-worker claim plane for intra-shard work stealing of frontier
/// words (sparse sweeps only). At sweep start the owner publishes its
/// (word, ownership-mask) list and the claim range, then store-releases
/// `active`; a thief that acquire-loads active==1 therefore sees a
/// consistent (words, next, limit) triple. The owner claims forward with
/// fetch_add on `next`; a thief claims the *back half* by CAS-ing `limit`
/// down to the midpoint, so owner and thief walk toward each other and the
/// overlap window is at most one word (an owner fetch_add racing the CAS) —
/// benign, because processing a row starts with MonoTable::HarvestDelta's
/// atomic exchange: the second visitor reads the identity and no-ops.
/// Writes stay race-free because a thief routes contributions exactly like
/// an owner would (CombineDelta only into rows the *thief* owns, combining
/// buffers to everyone else) and the victim's ownership masks restrict the
/// stolen words to the victim's rows, so no third worker's rows are ever
/// touched. Cache-line aligned: next/limit are contended across threads and
/// must not false-share with a neighbouring worker's shard.
struct alignas(64) StealShard {
  const std::pair<size_t, uint64_t>* words = nullptr;
  std::atomic<uint32_t> next{0};
  std::atomic<uint32_t> limit{0};
  std::atomic<uint8_t> active{0};
};

/// \brief State shared by all workers and the master for one run.
struct SharedState {
  const Graph* graph = nullptr;
  const Graph* prop = nullptr;  ///< propagation graph (reverse if pulling)
  const Kernel* kernel = nullptr;
  MonoTable* table = nullptr;
  const Partitioner* partition = nullptr;
  MessageBus* bus = nullptr;
  const EngineOptions* options = nullptr;

  std::atomic<bool> stop{false};
  std::atomic<bool> converged{false};

  // Statistics.
  std::atomic<int64_t> harvests{0};
  std::atomic<int64_t> edge_applications{0};

  // Sync mode.
  Barrier* barrier = nullptr;            ///< all workers
  std::atomic<int64_t> superstep{0};
  std::atomic<int64_t> superstep_work{0};  ///< useful harvests this superstep
  std::atomic<double> bucket_limit{0.0};   ///< Δ-stepping current bucket bound

  // Sync-mode ε-termination state: the global aggregate across supersteps
  // (|G_k − G_{k−1}| < ε, two consecutive). Touched only inside the serial
  // decision section between the second and third barriers, so plain fields
  // are safe — the barrier's mutex hands them off across supersteps.
  double sync_prev_global = std::numeric_limits<double>::quiet_NaN();
  int sync_eps_streak = 0;

  // Async modes: per-worker idle flags for quiescence detection.
  std::vector<std::atomic<uint8_t>>* idle_flags = nullptr;

  // Work stealing (EngineOptions::steal): one StealShard per worker, or null
  // when stealing is off / single-worker / frontier off.
  std::vector<StealShard>* steal = nullptr;

  // Sync-mode steal polling, allocated with `steal`. sweeping[w] != 0 means
  // worker w's compute phase for the current superstep has not finished: a
  // worker that is done keeps polling the steal plane while any peer's flag
  // is up instead of parking at the barrier behind the straggler. Each
  // worker raises its own flag *before* the decision barrier (and the
  // engine raises all of them before the first superstep), so the flags are
  // visibly up before any peer can start the next superstep's poll — a
  // flag raised after the barrier would race a fast peer's poll and turn
  // it into the one-shot check this plane exists to avoid.
  std::vector<std::atomic<uint8_t>>* sweeping = nullptr;

  // Worker pinning (EngineOptions::pin): worker_cpu[w] is the CPU worker w
  // binds to on entry; null when pinning is off.
  const std::vector<int>* worker_cpu = nullptr;

  // Stale-synchronous mode (null / inert elsewhere). worker_clock[w] is
  // worker w's completed-superstep count, published with release semantics
  // (bumped once per superstep loop iteration); the staleness gate
  // acquire-loads its peers' clocks and blocks while
  // own − min(live clocks) > staleness_bound. The bound is a live atomic so
  // the `--staleness=auto` controller can retune it mid-run; blocks and
  // max_lead are the observability/acceptance counters behind
  // `staleness.{blocks,max_lead}`.
  std::vector<std::atomic<int64_t>>* worker_clock = nullptr;
  std::atomic<int64_t> staleness_bound{0};
  std::atomic<int64_t> staleness_blocks{0};
  std::atomic<int64_t> staleness_max_lead{0};

  // Fault tolerance (null / inert when the supervisor is off).
  FaultInjector* injector = nullptr;
  std::vector<WorkerControl>* control = nullptr;
  CheckpointStore* ckpt = nullptr;

  // Pause rendezvous: the supervisor bumps pause_epoch and sets
  // pause_pending; workers force-flush their buffers and park at the next
  // control point until resume_epoch catches up. parked counts how many are
  // in the pen. The epochs and parked are guarded by ctl_mutex.
  std::mutex ctl_mutex;
  std::condition_variable ctl_cv;
  int64_t pause_epoch = 0;
  int64_t resume_epoch = 0;
  int64_t parked = 0;
  std::atomic<bool> pause_pending{false};
  std::atomic<bool> recovering{false};
  /// Serialises pause orchestrators: the supervisor (recovery, sum-mode
  /// checkpoints) and the termination controller (ε consistent-cut
  /// confirmation) must never interleave pause/resume epochs.
  std::mutex pause_mutex;
  /// Bumped once per completed recovery so the termination controller can
  /// discard ε-streak state derived from the pre-rollback table.
  std::atomic<int64_t> recovery_generation{0};

  // Fault-tolerance statistics.
  std::atomic<int64_t> recoveries{0};
  std::atomic<int64_t> checkpoints_written{0};
  std::atomic<int64_t> checkpoint_us{0};

  // Observability (options->collect_metrics): shared histograms the workers
  // and bus feed; null when collection is off.
  metrics::Histogram* flush_size_hist = nullptr;

  // Event tracing (options->trace): null when tracing is off — every
  // instrumentation site guards on this pointer, so the disabled cost is one
  // branch and zero clock reads.
  trace::Tracer* tracer = nullptr;

  // Per-worker mean adaptive β, updated by each worker on flush; allocated
  // when the timeline (record_trace) or live exposition needs it, null
  // otherwise.
  std::vector<std::atomic<double>>* worker_beta = nullptr;

  // Straggler attribution (kStaleSync only, null elsewhere): worker_busy[w]
  // is worker w's EMA-smoothed busy fraction of superstep wall time —
  // (sweep + flush) / total, so park time at the staleness gate reads as
  // idle. Published at each clock bump; the auto-tuner reads it to tell a
  // persistently slow worker (rebalance, don't widen) from transient noise.
  std::vector<std::atomic<double>>* worker_busy = nullptr;
  /// Worker id the tuner currently attributes the skew to, or -1. Written
  /// by the termination controller, read by exposition and final stats.
  std::atomic<int64_t> straggler_identity{-1};
  /// Widening decisions suppressed because the skew traced to the flagged
  /// persistent straggler.
  std::atomic<int64_t> straggler_suppressed{0};

  // Convergence timeline (options->record_trace): guarded by trace_mutex.
  std::mutex trace_mutex;
  std::vector<TraceSample> trace;
  int64_t start_us = 0;
};

/// Appends a trace sample (no-op unless recording). Thread-safe.
void RecordTraceSample(SharedState* shared);

/// Requests a pause and blocks until every live (non-victim) worker is
/// parked with force-flushed buffers. Workers found dead while waiting are
/// fenced (incarnation bump) and appended to `victims` so a crash cannot
/// deadlock the rendezvous. Caller must hold SharedState::pause_mutex.
/// Returns false if the run stopped while waiting.
bool PauseWorkers(SharedState* shared, std::vector<uint32_t>* victims);

/// Releases pause-parked workers. `rearm` re-arms a broken sync barrier for
/// a full complement; pass false when shutting down with a dead participant
/// (survivors must fall through broken barriers and exit at the loop top —
/// a re-armed barrier missing one arrival would strand them). Reset on a
/// *live* barrier is never legal: the generation bump loses wakeups and the
/// count rewind corrupts in-flight arrivals, so rearm only acts on a barrier
/// an earlier PauseWorkers actually broke.
void ResumeWorkers(SharedState* shared, bool rearm = true);

/// \brief One worker: owns a shard of the key space, processes deltas, and
/// routes remote contributions through per-destination combining buffers.
class Worker {
 public:
  /// `incarnation` is this worker's fencing token: 0 for the initial spawn,
  /// the bumped WorkerControl::incarnation value for supervisor respawns.
  Worker(uint32_t id, SharedState* shared, int64_t incarnation = 0);

  /// Entry point; dispatches on the engine mode.
  void Run();

  int64_t incarnation() const { return incarnation_; }

  /// Per-worker execution breakdown; read after the worker thread joins.
  const WorkerStats& stats() const { return stats_; }

  /// Appends this worker's β-trajectory series ("buffer.beta.w<i>_to_w<j>")
  /// to `snap`. Call after the worker thread joins.
  void ExportMetrics(metrics::MetricsSnapshot* snap) const;

 private:
  /// Below this active fraction the sweep switches from the dense bit-peek
  /// scan to the sparse word-scan worklist (and back above it).
  static constexpr double kSparseThreshold = 1.0 / 16.0;

  void RunSync();
  void RunAsyncLike();  // kAsync / kAap / kSyncAsync
  void RunStaleSync();  // kStaleSync: free supersteps behind a staleness gate

  /// kStaleSync staleness gate: blocks while this worker's completed-
  /// superstep clock leads the slowest live worker's by more than the
  /// (possibly auto-tuned) bound. Keeps draining the inbox, beating, and
  /// honouring pause requests while gated so a blocked fast worker never
  /// dams the wire and the supervisor sees it as alive, not hung. Returns
  /// false when this incarnation must exit (crashed or fenced).
  bool WaitForSlowest();

  /// Minimum superstep clock over live (non-dead) workers. A crashed
  /// straggler's frozen clock must never wedge the gate; recovery re-bases
  /// every clock to a consistent cut before the respawn resumes.
  int64_t SlowestLiveClock() const;

  /// Publishes this worker's mean adaptive β (and the staleness-tuning
  /// inputs that ride with it) to SharedState::worker_beta. Called from
  /// every mode that runs the β EMA — not just the async-family flush
  /// paths — so kStaleSync auto-tuning inputs are never silently empty.
  void PublishBeta();

  /// One pass over this worker's shard: full scan when the frontier is off,
  /// dense bit-peek or sparse word-scan sweep when it is on (automatic
  /// switching on the last sweep's active fraction). Owns the mid-sweep
  /// control cadence — keyed off the *loop index*, not the vertex id, so
  /// every worker hits control/flush points regardless of which ids the
  /// partition dealt it. Returns useful harvests; sets `*exited` when
  /// CheckControl demanded an immediate exit (caller unwinds).
  int64_t SweepOwned(bool* exited);

  /// One steal attempt: picks the active peer with the most unclaimed
  /// frontier words (the slowest owner), CAS-claims the back half of its
  /// range, and processes the stolen words with the normal control cadence.
  /// Returns true iff a claim succeeded (useful harvests are accumulated
  /// into `*useful`); callers loop until it returns false. Sets `*exited`
  /// like SweepOwned. No-op unless the steal plane is allocated.
  bool TryStealSweep(int64_t* useful, bool* exited);

  /// Drains the inbox into the MonoTable. Returns updates applied.
  size_t DrainInbox();

  /// Harvests one vertex's delta and propagates it. Returns true if the
  /// delta was useful (actually propagated).
  bool ProcessVertex(VertexId v);

  /// Sends buffers per policy; `force` flushes everything (barrier).
  void FlushBuffers(bool force);

  /// Barrier arrival, accounting the straggler wait when metrics are on.
  bool ArriveAndWaitTimed();

  /// Control point: heartbeat, fence check, fault triggers, pause parking.
  /// Returns false when this incarnation must exit immediately (crashed or
  /// fenced); the caller unwinds without flushing buffers.
  bool CheckControl();

  /// Heartbeat-only bump for long non-control loops (inbox drains).
  void Beat();

  /// Parks at the pause rendezvous if the supervisor requested one.
  void MaybePark();

  /// Applies F' to one harvested delta and routes the contributions,
  /// dispatching on the kernel's specialized scatter shape. Returns the
  /// number of edge applications.
  int64_t ScatterDelta(VertexId v, double tmp);

  uint32_t id_;
  SharedState* shared_;
  const trace::Tracer* tracer_ = nullptr;  ///< cached SharedState::tracer
  int64_t incarnation_ = 0;
  int64_t beats_ = 0;    ///< local heartbeat counter, mirrored to control
  bool dead_ = false;    ///< crashed or fenced: suppress all further sends
  std::vector<VertexId> owned_;
  // Frontier sweep state. owned_words_ precomputes, per 64-row bitmap word
  // touched by this shard, the mask of bits this worker owns — the sparse
  // sweep is then one masked load per word, processed inline (ctz walk).
  // The same (word, mask) list is what the steal plane publishes.
  bool frontier_ = false;
  bool sparse_sweep_ = false;       ///< current sweep strategy
  double active_fraction_ = 1.0;    ///< measured by the last sweep
  std::vector<std::pair<size_t, uint64_t>> owned_words_;
  // SIMD edge kernels. span_fn_ is the dispatched span form of F' (null when
  // --no-simd or the kernel fell back to the VM); contributions are computed
  // wide into contrib_scratch_ (grown lazily to the largest out-degree seen,
  // zero steady-state allocation) and then routed scalar — routing needs a
  // per-destination ownership test and an atomic combine, which AVX2 cannot
  // scatter.
  static constexpr size_t kSimdMinSpan = 8;  ///< spans below this stay scalar
  bool simd_enabled_ = false;
  EdgeSpanFn span_fn_ = nullptr;
  std::vector<double> contrib_scratch_;
  // Outgoing buffers/policies are indexed by *peer slot*, not worker id: a
  // worker never messages itself (local contributions go straight into the
  // MonoTable), so there are num_workers-1 buffers and peers_[slot] maps a
  // slot back to the destination worker id.
  std::vector<uint32_t> peers_;
  std::vector<CombiningBuffer> out_buffers_;  ///< one per peer
  std::vector<BufferPolicy> policies_;
  UpdateBatch inbox_scratch_;
  WorkerStats stats_;
  bool collect_metrics_ = false;
  bool adaptive_priority_ = false;  ///< §5.4 EMA priority (async family only)
  int64_t idle_scans_ = 0;  ///< consecutive no-work scans (threshold decay)
  int64_t compute_debt_ns_ = 0;  ///< accumulated inflation cost to sleep off
  // Adaptive priority (§5.4): moving average of pending |delta| magnitudes.
  double priority_ema_ = 0.0;
  double scan_abs_sum_ = 0.0;
  int64_t scan_count_ = 0;
  // Environment-noise stalls.
  void MaybeStall();
  Rng stall_rng_;
  int64_t next_stall_us_ = 0;
};

}  // namespace powerlog::runtime
