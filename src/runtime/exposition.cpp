#include "runtime/exposition.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace powerlog {

namespace {

std::string SanitizeMetricName(const std::string& name) {
  std::string out = "powerlog_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string PrometheusText(const metrics::MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = SanitizeMetricName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += buf;
    out += "\n";
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = SanitizeMetricName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " ";
    AppendNumber(out, value);
    out += "\n";
  }

  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string pname = SanitizeMetricName(name);
    out += "# TYPE " + pname + " histogram\n";
    // Prometheus buckets are cumulative; the registry's are per-bucket.
    int64_t cumulative = 0;
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += i < hist.counts.size() ? hist.counts[i] : 0;
      out += pname + "_bucket{le=\"";
      AppendNumber(out, hist.bounds[i]);
      out += "\"} ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, cumulative);
      out += buf;
      out += "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, hist.count);
    out += buf;
    out += "\n";
    out += pname + "_sum ";
    AppendNumber(out, hist.sum);
    out += "\n";
    out += pname + "_count ";
    std::snprintf(buf, sizeof(buf), "%" PRId64, hist.count);
    out += buf;
    out += "\n";
  }

  return out;
}

ExpositionServer::~ExpositionServer() {
  ClearSources();
  Stop();
}

Result<int> ExpositionServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("exposition server already running");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                           err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen: " + err);
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname: " + err);
  }
  port_ = ntohs(addr.sin_port);

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  POWERLOG_INFO << "exposition server on 127.0.0.1:" << port_;
  return port_;
}

void ExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Unblock the accept loop: shutdown makes a blocked accept on a listening
  // socket return (EINVAL) on Linux. Close only *after* the join — closing
  // first would race the serve thread's accept(listen_fd_) both on the fd
  // value and on kernel-level fd reuse.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ExpositionServer::SetSources(MetricsFn metrics_fn, TraceFn trace_fn) {
  std::lock_guard<std::mutex> lock(sources_mutex_);
  metrics_fn_ = std::move(metrics_fn);
  trace_fn_ = std::move(trace_fn);
}

void ExpositionServer::ClearSources() {
  // The handler holds sources_mutex_ while reading through the callbacks, so
  // taking it here blocks until any in-flight request has finished with them.
  std::lock_guard<std::mutex> lock(sources_mutex_);
  metrics_fn_ = nullptr;
  trace_fn_ = nullptr;
}

void ExpositionServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener closed under us
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

namespace {

void WriteResponse(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  char header[256];
  const int n = std::snprintf(header, sizeof(header),
                              "HTTP/1.1 %s\r\n"
                              "Content-Type: %s\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n"
                              "\r\n",
                              status, content_type, body.size());
  if (n <= 0) return;
  std::string response(header, static_cast<size_t>(n));
  response += body;
  size_t off = 0;
  while (off < response.size()) {
    const ssize_t w = ::write(fd, response.data() + off, response.size() - off);
    if (w <= 0) return;
    off += static_cast<size_t>(w);
  }
}

}  // namespace

void ExpositionServer::HandleConnection(int fd) {
  char buf[2048];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  if (n <= 0) return;
  buf[n] = '\0';

  // "GET /path HTTP/1.1" — everything else is a 400.
  if (std::strncmp(buf, "GET ", 4) != 0) {
    WriteResponse(fd, "400 Bad Request", "text/plain", "GET only\n");
    return;
  }
  const char* path_begin = buf + 4;
  const char* path_end = std::strchr(path_begin, ' ');
  if (path_end == nullptr) {
    WriteResponse(fd, "400 Bad Request", "text/plain", "malformed request\n");
    return;
  }
  const std::string path(path_begin, path_end);

  if (path == "/healthz") {
    WriteResponse(fd, "200 OK", "text/plain", "ok\n");
    return;
  }

  std::lock_guard<std::mutex> lock(sources_mutex_);
  if (path == "/metrics") {
    if (!metrics_fn_) {
      WriteResponse(fd, "503 Service Unavailable", "text/plain",
                    "no run attached\n");
      return;
    }
    WriteResponse(fd, "200 OK", "text/plain; version=0.0.4",
                  PrometheusText(metrics_fn_()));
  } else if (path == "/metrics.json") {
    if (!metrics_fn_) {
      WriteResponse(fd, "503 Service Unavailable", "text/plain",
                    "no run attached\n");
      return;
    }
    WriteResponse(fd, "200 OK", "application/json", metrics_fn_().ToJson());
  } else if (path == "/trace") {
    std::string trace = trace_fn_ ? trace_fn_() : std::string();
    if (trace.empty()) {
      WriteResponse(fd, "404 Not Found", "text/plain",
                    "tracing not enabled\n");
      return;
    }
    WriteResponse(fd, "200 OK", "application/json", trace);
  } else {
    WriteResponse(fd, "404 Not Found", "text/plain", "unknown path\n");
  }
}

}  // namespace powerlog
