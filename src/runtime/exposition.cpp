#include "runtime/exposition.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace powerlog {

namespace {

/// Listener-side cap on accepted-but-unhandled connections; beyond it the
/// listener sheds load by closing the socket immediately.
constexpr size_t kMaxQueuedConnections = 128;

std::string SanitizeMetricName(const std::string& name) {
  // The "powerlog_" prefix doubles as the guard against identifiers starting
  // with a digit: whatever `name` begins with, the rendered identifier
  // starts with a letter.
  std::string out = "powerlog_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string PrometheusText(const metrics::MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = SanitizeMetricName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += buf;
    out += "\n";
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = SanitizeMetricName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " ";
    AppendNumber(out, value);
    out += "\n";
  }

  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string pname = SanitizeMetricName(name);
    out += "# TYPE " + pname + " histogram\n";
    // Prometheus buckets are cumulative; the registry's are per-bucket.
    // Every rendered value is derived from the same counts[] array so the
    // sequence is non-decreasing by construction and `_count` equals the
    // `+Inf` bucket, as the exposition format requires — `hist.count` is
    // maintained as a separate atomic and can disagree transiently when the
    // snapshot is taken concurrently with Observe calls.
    int64_t cumulative = 0;
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += i < hist.counts.size() ? hist.counts[i] : 0;
      out += pname + "_bucket{le=\"";
      AppendNumber(out, hist.bounds[i]);
      out += "\"} ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, cumulative);
      out += buf;
      out += "\n";
    }
    // Overflow bucket (counts has bounds.size()+1 entries, last = overflow).
    if (hist.counts.size() > hist.bounds.size()) {
      cumulative += hist.counts[hist.bounds.size()];
    }
    char buf[32];
    out += pname + "_bucket{le=\"+Inf\"} ";
    std::snprintf(buf, sizeof(buf), "%" PRId64, cumulative);
    out += buf;
    out += "\n";
    out += pname + "_sum ";
    AppendNumber(out, hist.sum);
    out += "\n";
    out += pname + "_count ";
    std::snprintf(buf, sizeof(buf), "%" PRId64, cumulative);
    out += buf;
    out += "\n";
  }

  return out;
}

ExpositionServer::~ExpositionServer() {
  ClearSources();
  Stop();
}

Result<int> ExpositionServer::Start(int port, int handler_threads) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("exposition server already running");
  }
  if (handler_threads < 1) {
    return Status::InvalidArgument("exposition server needs >= 1 handler thread");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  // Before bind, always: a previous incarnation's accepted sockets linger in
  // TIME_WAIT after Stop() (the server closes first), and without address
  // reuse an immediate rebind of the same port fails with EADDRINUSE.
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("setsockopt(SO_REUSEADDR): " + err);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                           err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen: " + err);
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname: " + err);
  }
  port_ = ntohs(addr.sin_port);

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  handler_threads_.reserve(static_cast<size_t>(handler_threads));
  for (int i = 0; i < handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  POWERLOG_INFO << "exposition server on 127.0.0.1:" << port_ << " ("
                << handler_threads << " handler thread(s))";
  return port_;
}

void ExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Unblock the accept loop: shutdown makes a blocked accept on a listening
  // socket return (EINVAL) on Linux. Close only *after* the join — closing
  // first would race the serve thread's accept(listen_fd_) both on the fd
  // value and on kernel-level fd reuse.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Wake the handler pool; each thread finishes its in-flight request (a
  // custom route may be a full engine run — clean shutdown waits for it)
  // and exits once the queue is drained.
  queue_cv_.notify_all();
  for (auto& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  // Whatever the pool did not get to: close, don't leak. New connections
  // stopped arriving when the listener died.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : conn_queue_) ::close(fd);
  conn_queue_.clear();
}

void ExpositionServer::SetSources(MetricsFn metrics_fn, TraceFn trace_fn) {
  std::lock_guard<std::mutex> lock(sources_mutex_);
  metrics_fn_ = std::move(metrics_fn);
  trace_fn_ = std::move(trace_fn);
}

void ExpositionServer::ClearSources() {
  // The handler holds sources_mutex_ while reading through the callbacks, so
  // taking it here blocks until any in-flight request has finished with them.
  std::lock_guard<std::mutex> lock(sources_mutex_);
  metrics_fn_ = nullptr;
  trace_fn_ = nullptr;
}

void ExpositionServer::SetHandler(Handler handler) {
  if (running_.load(std::memory_order_acquire)) {
    POWERLOG_WARN << "SetHandler ignored: server is running";
    return;
  }
  handler_ = std::move(handler);
}

void ExpositionServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener closed under us
    }
    // A client that connects and then never sends (or never reads) must not
    // wedge a handler thread — and with it Stop() — forever.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (conn_queue_.size() >= kMaxQueuedConnections) {
        ::close(fd);  // shed load
        continue;
      }
      conn_queue_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void ExpositionServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !conn_queue_.empty() || stop_.load(std::memory_order_acquire);
      });
      if (conn_queue_.empty()) return;  // stop requested, queue drained
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

namespace {

const char* StatusLine(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 400: return "400 Bad Request";
    case 404: return "404 Not Found";
    case 408: return "408 Request Timeout";
    case 431: return "431 Request Header Fields Too Large";
    case 503: return "503 Service Unavailable";
    default: return "500 Internal Server Error";
  }
}

void WriteResponse(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  char header[256];
  const int n = std::snprintf(header, sizeof(header),
                              "HTTP/1.1 %s\r\n"
                              "Content-Type: %s\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n"
                              "\r\n",
                              status, content_type, body.size());
  if (n <= 0) return;
  std::string response(header, static_cast<size_t>(n));
  response += body;
  size_t off = 0;
  while (off < response.size()) {
    const ssize_t w = ::write(fd, response.data() + off, response.size() - off);
    if (w <= 0) return;
    off += static_cast<size_t>(w);
  }
}

}  // namespace

void ExpositionServer::HandleConnection(int fd) {
  // Read until the header terminator (the socket carries a 5s SO_RCVTIMEO,
  // so a stalled client times the read out rather than pinning the thread).
  constexpr size_t kMaxHeaderBytes = 16 * 1024;
  constexpr size_t kMaxBodyBytes = 1 << 20;  // 1 MiB mutation batches
  std::string raw;
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    char buf[2048];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return;
    raw.append(buf, static_cast<size_t>(n));
    header_end = raw.find("\r\n\r\n");
    if (header_end == std::string::npos && raw.size() > kMaxHeaderBytes) {
      // 431, not 400: the request line may be perfectly well-formed — it is
      // specifically the header section that blew the bound, and the
      // distinct code lets clients/load-balancers tell the two apart.
      WriteResponse(fd, StatusLine(431), "text/plain", "headers too large\n");
      return;
    }
  }
  const std::string headers = raw.substr(0, header_end);

  // "GET /path HTTP/1.1" or "POST /path HTTP/1.1" — everything else is 400.
  HttpRequest req;
  size_t target_begin;
  if (headers.compare(0, 4, "GET ") == 0) {
    req.method = "GET";
    target_begin = 4;
  } else if (headers.compare(0, 5, "POST ") == 0) {
    req.method = "POST";
    target_begin = 5;
  } else {
    WriteResponse(fd, "400 Bad Request", "text/plain", "GET or POST only\n");
    return;
  }
  const size_t target_end = headers.find(' ', target_begin);
  if (target_end == std::string::npos) {
    WriteResponse(fd, "400 Bad Request", "text/plain", "malformed request\n");
    return;
  }
  req.target = headers.substr(target_begin, target_end - target_begin);

  // Entity body: POSTs declare Content-Length; keep reading past the header
  // terminator until the declared bytes have arrived.
  size_t content_length = 0;
  {
    // Case-insensitive header scan over lowered header text.
    std::string lowered = headers;
    for (char& c : lowered) c = static_cast<char>(std::tolower(c));
    const size_t pos = lowered.find("content-length:");
    if (pos != std::string::npos) {
      content_length = std::strtoull(lowered.c_str() + pos + 15, nullptr, 10);
    }
  }
  if (content_length > kMaxBodyBytes) {
    WriteResponse(fd, "400 Bad Request", "text/plain", "body too large\n");
    return;
  }
  const size_t body_start = header_end + 4;
  while (raw.size() - body_start < content_length) {
    char buf[2048];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return;
    raw.append(buf, static_cast<size_t>(n));
  }
  req.body = raw.substr(body_start, content_length);
  const std::string& path = req.target;

  if (req.method == "GET" && path == "/healthz") {
    WriteResponse(fd, "200 OK", "text/plain", "ok\n");
    return;
  }

  if (req.method == "GET" &&
      (path == "/metrics" || path == "/metrics.json" || path == "/trace")) {
    std::lock_guard<std::mutex> lock(sources_mutex_);
    if (path == "/metrics") {
      if (!metrics_fn_) {
        WriteResponse(fd, "503 Service Unavailable", "text/plain",
                      "no run attached\n");
        return;
      }
      WriteResponse(fd, "200 OK", "text/plain; version=0.0.4",
                    PrometheusText(metrics_fn_()));
    } else if (path == "/metrics.json") {
      if (!metrics_fn_) {
        WriteResponse(fd, "503 Service Unavailable", "text/plain",
                      "no run attached\n");
        return;
      }
      WriteResponse(fd, "200 OK", "application/json", metrics_fn_().ToJson());
    } else {
      std::string trace = trace_fn_ ? trace_fn_() : std::string();
      if (trace.empty()) {
        WriteResponse(fd, "404 Not Found", "text/plain",
                      "tracing not enabled\n");
        return;
      }
      WriteResponse(fd, "200 OK", "application/json", trace);
    }
    return;
  }

  // Custom routes run outside sources_mutex_ so a long-running handler (the
  // serving plane's /run is a full engine execution) never blocks metric
  // scrapes or a ClearSources detach.
  if (handler_) {
    HttpResponse resp;
    if (handler_(req, &resp)) {
      WriteResponse(fd, StatusLine(resp.status), resp.content_type.c_str(),
                    resp.body);
      return;
    }
  }
  WriteResponse(fd, "404 Not Found", "text/plain", "unknown path\n");
}

}  // namespace powerlog
