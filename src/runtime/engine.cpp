#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/numa_arena.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/kernel_simd.h"
#include "runtime/checkpoint.h"
#include "runtime/exposition.h"
#include "runtime/termination.h"
#include "runtime/worker.h"

namespace powerlog::runtime {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kSync: return "sync";
    case ExecMode::kAsync: return "async";
    case ExecMode::kAap: return "aap";
    case ExecMode::kSyncAsync: return "sync-async";
    case ExecMode::kStaleSync: return "stale-sync";
  }
  return "?";
}

std::string EngineStats::Summary() const {
  return StringFormat(
      "wall=%.3fs supersteps=%lld harvests=%lld edge_apps=%lld messages=%lld "
      "updates=%lld converged=%s simd=%s vec_edges=%lld steal_words=%lld "
      "recoveries=%lld checkpoints=%lld",
      wall_seconds, static_cast<long long>(supersteps),
      static_cast<long long>(harvests), static_cast<long long>(edge_applications),
      static_cast<long long>(messages), static_cast<long long>(updates_sent),
      converged ? "true" : "false",
      simd_dispatch.empty() ? "?" : simd_dispatch.c_str(),
      static_cast<long long>(vector_edges),
      static_cast<long long>(steal_words),
      static_cast<long long>(recoveries),
      static_cast<long long>(checkpoints_written));
}

namespace {

/// Flattens the per-worker breakdown, bus pair counts, and run totals into
/// `snap` under stable dotted names (see DESIGN.md "Observability").
void ExportRunMetrics(const EngineStats& stats, const MessageBus& bus,
                      uint32_t num_workers, metrics::MetricsSnapshot* snap) {
  snap->AddCounter("engine.supersteps", stats.supersteps);
  snap->AddCounter("engine.harvests", stats.harvests);
  snap->AddCounter("engine.edge_applications", stats.edge_applications);
  snap->AddCounter("engine.messages", stats.messages);
  snap->AddCounter("engine.updates_sent", stats.updates_sent);
  snap->AddGauge("engine.wall_seconds", stats.wall_seconds);
  snap->AddGauge("engine.converged", stats.converged ? 1.0 : 0.0);
  snap->AddCounter("engine.dense_sweeps", stats.dense_sweeps);
  snap->AddCounter("engine.sparse_sweeps", stats.sparse_sweeps);
  snap->AddCounter("engine.frontier_skipped", stats.frontier_skipped);
  snap->AddCounter("engine.specialized_edges", stats.specialized_edges);
  snap->AddCounter("engine.vm_edges", stats.vm_edges);
  // SIMD/steal compute-plane counters. simd.dispatch is exported as the
  // numeric Level ordinal (0 = scalar/off, 1 = avx2, 2 = avx512) so the
  // JSON dump stays type-uniform; the string form lives in
  // EngineStats::simd_dispatch.
  snap->AddGauge("simd.dispatch", stats.simd_dispatch == "avx512" ? 2.0
                                  : stats.simd_dispatch == "avx2" ? 1.0
                                                                  : 0.0);
  snap->AddCounter("simd.vector_edges", stats.vector_edges);
  snap->AddCounter("simd.scalar_edges", stats.scalar_edges);
  snap->AddCounter("steal.attempts", stats.steal_attempts);
  snap->AddCounter("steal.words", stats.steal_words);
  if (stats.staleness_blocks > 0 || stats.staleness_final_bound > 0) {
    snap->AddCounter("staleness.blocks", stats.staleness_blocks);
    snap->AddGauge("staleness.max_lead",
                   static_cast<double>(stats.staleness_max_lead));
    snap->AddGauge("staleness.bound",
                   static_cast<double>(stats.staleness_final_bound));
    snap->AddGauge("straggler.identity",
                   static_cast<double>(stats.straggler_identity));
    snap->AddCounter("staleness.widens_suppressed",
                     stats.staleness_widens_suppressed);
  }
  snap->AddCounter("engine.recoveries", stats.recoveries);
  snap->AddCounter("engine.checkpoints_written", stats.checkpoints_written);
  snap->AddCounter("engine.checkpoint_us", stats.checkpoint_us);
  snap->AddCounter("fault.crashes", stats.faults.crashes);
  snap->AddCounter("fault.hangs", stats.faults.hangs);
  snap->AddCounter("fault.messages_dropped", stats.faults.messages_dropped);
  snap->AddCounter("fault.messages_duplicated", stats.faults.messages_duplicated);
  snap->AddCounter("fault.messages_reordered", stats.faults.messages_reordered);
  for (const WorkerStats& w : stats.workers) {
    const std::string prefix = StringFormat("worker.%u.", w.worker_id);
    snap->AddCounter(prefix + "harvests", w.harvests);
    snap->AddCounter(prefix + "edge_applications", w.edge_applications);
    snap->AddCounter(prefix + "flushes", w.flushes);
    snap->AddCounter(prefix + "flushed_updates", w.flushed_updates);
    snap->AddCounter(prefix + "inbox_updates", w.inbox_updates);
    snap->AddCounter(prefix + "idle_scans", w.idle_scans);
    snap->AddCounter(prefix + "dense_sweeps", w.dense_sweeps);
    snap->AddCounter(prefix + "sparse_sweeps", w.sparse_sweeps);
    snap->AddCounter(prefix + "frontier_skipped", w.frontier_skipped);
    snap->AddCounter(prefix + "specialized_edges", w.specialized_edges);
    snap->AddCounter(prefix + "vm_edges", w.vm_edges);
    snap->AddCounter(prefix + "vector_edges", w.vector_edges);
    snap->AddCounter(prefix + "scalar_edges", w.scalar_edges);
    snap->AddCounter(prefix + "steal_attempts", w.steal_attempts);
    snap->AddCounter(prefix + "steal_words", w.steal_words);
    snap->AddCounter(prefix + "barrier_wait_us", w.barrier_wait_us);
    snap->AddCounter(prefix + "stall_us", w.stall_us);
    snap->AddCounter(prefix + "inbox_drain_us", w.inbox_drain_us);
  }
  const BatchPool::Stats pool = bus.pool_stats();
  snap->AddCounter("bus.pool.hits", pool.hits);
  snap->AddCounter("bus.pool.misses", pool.misses);
  snap->AddCounter("bus.pool.discards", pool.discards);
  snap->AddCounter("bus.overflow_sends", bus.stats().overflow_sends);
  for (uint32_t from = 0; from < num_workers; ++from) {
    for (uint32_t to = 0; to < num_workers; ++to) {
      const int64_t messages = bus.PairMessages(from, to);
      if (messages == 0) continue;
      snap->AddCounter(StringFormat("bus.messages.w%u_to_w%u", from, to),
                       messages);
      snap->AddCounter(StringFormat("bus.updates.w%u_to_w%u", from, to),
                       bus.PairUpdates(from, to));
    }
  }
}

bool SumLike(AggKind kind) {
  return kind == AggKind::kSum || kind == AggKind::kCount;
}

/// Idempotent re-derivation sweep (min/max recovery): re-applies F' to every
/// settled accumulation and combines the contributions straight into the
/// table. Re-combining an already-applied contribution is a no-op under
/// min/max, so one sweep heals a wiped shard, discarded wire messages, and
/// lost outgoing buffers alike — without bookkeeping about *which*
/// contribution went missing. Only safe while all workers are parked.
void RepropagateAll(SharedState* shared) {
  const Kernel& kernel = *shared->kernel;
  MonoTable& table = *shared->table;
  int64_t apps = 0;
  const VertexId n = shared->graph->num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const double x = table.accumulation(v);
    if (x == table.identity() || !std::isfinite(x)) continue;
    const double deg = static_cast<double>(shared->graph->OutDegree(v));
    for (const Edge& e : shared->prop->OutEdges(v)) {
      table.CombineDelta(e.dst, kernel.EvalEdge(x, e.weight, deg));
      ++apps;
    }
  }
  shared->edge_applications.fetch_add(apps, std::memory_order_relaxed);
}

/// \brief The supervisor: detects dead / hung workers via their control
/// blocks, runs the pause-restore-respawn recovery protocol, and publishes
/// periodic async-mode checkpoints. Runs on its own thread until stop.
class Supervisor {
 public:
  Supervisor(SharedState* shared, CheckpointStore* store,
             const std::vector<double>* x0, const std::vector<double>* delta0,
             std::mutex* spawn_mutex,
             std::vector<std::unique_ptr<Worker>>* workers,
             std::vector<std::thread>* threads)
      : shared_(shared),
        store_(store),
        x0_(x0),
        delta0_(delta0),
        spawn_mutex_(spawn_mutex),
        workers_(workers),
        threads_(threads) {}

  void Run() {
    const EngineOptions& options = *shared_->options;
    const uint32_t n = options.num_workers;
    Logger::SetThreadTag("sup");
    if (shared_->tracer != nullptr) {
      shared_->tracer->RegisterCurrentThread("supervisor" +
                                             options.trace_run_tag);
    }
    last_beat_.assign(n, -1);
    last_change_us_.assign(n, NowMicros());
    int64_t last_ckpt_us = NowMicros();
    int64_t tick_us = 2000;
    if (options.heartbeat_timeout_us > 0) {
      tick_us = std::min(tick_us, options.heartbeat_timeout_us / 4);
    }
    tick_us = std::max<int64_t>(tick_us, 100);

    while (!shared_->stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(tick_us));
      const int64_t now = NowMicros();
      std::vector<uint32_t> victims;
      for (uint32_t w = 0; w < n; ++w) {
        auto& ctl = (*shared_->control)[w];
        if (ctl.dead.load(std::memory_order_acquire) != 0) {
          victims.push_back(w);
          continue;
        }
        const int64_t beat = ctl.heartbeat.load(std::memory_order_acquire);
        if (beat != last_beat_[w]) {
          last_beat_[w] = beat;
          last_change_us_[w] = now;
          continue;
        }
        if (options.heartbeat_timeout_us > 0 &&
            ctl.waiting.load(std::memory_order_acquire) == 0 &&
            now - last_change_us_[w] > options.heartbeat_timeout_us) {
          // Hung (a beat this stale with no legitimate wait in progress):
          // mark it dead so recovery treats it like a crash. State 3 =
          // supervisor-marked: the zombie never touches shared state again
          // (fencing makes its wake-up a silent exit), so recovery need not
          // wait for it the way it waits for a self-wiping crash victim.
          ctl.dead.store(3, std::memory_order_release);
          victims.push_back(w);
        }
      }
      if (!victims.empty()) {
        Recover(victims);
        // Fresh grace period: nobody beats while parked.
        const int64_t after = NowMicros();
        for (uint32_t w = 0; w < n; ++w) last_change_us_[w] = after;
        continue;
      }
      if (store_ != nullptr && options.checkpoint_interval_us > 0 &&
          options.mode != ExecMode::kSync &&
          now - last_ckpt_us >= options.checkpoint_interval_us) {
        PeriodicCheckpoint();
        last_ckpt_us = NowMicros();
      }
    }
    // Never exit with workers parked. If a dead peer left the sync barrier
    // short-handed, break it for good before releasing anyone: survivors
    // then fall straight through every barrier phase and exit at the loop
    // top, whereas re-arming would strand them waiting for an arrival that
    // can never come.
    bool any_dead = false;
    for (uint32_t w = 0; w < n; ++w) {
      any_dead |=
          (*shared_->control)[w].dead.load(std::memory_order_acquire) != 0;
    }
    if (any_dead && options.mode == ExecMode::kSync) {
      shared_->barrier->Break();
    }
    Resume(/*rearm=*/!any_dead);
    trace::Tracer::UnregisterCurrentThread();
  }

 private:
  /// See PauseWorkers / ResumeWorkers (worker.cpp) for the rendezvous and
  /// barrier-rearm rules; the supervisor shares them with the termination
  /// controller's ε consistent-cut confirmation via pause_mutex.
  bool PauseAll(std::vector<uint32_t>* victims) {
    return PauseWorkers(shared_, victims);
  }

  void Resume(bool rearm = true) { ResumeWorkers(shared_, rearm); }

  void Recover(std::vector<uint32_t>& victims) {
    const EngineOptions& options = *shared_->options;
    trace::SpanGuard recovery_span(shared_->tracer, "recovery");
    std::lock_guard<std::mutex> pause_lock(shared_->pause_mutex);
    shared_->recovering.store(true, std::memory_order_release);
    // Fence every victim first: even an incarnation still technically
    // running (hung in a sleep) must find itself superseded the moment it
    // wakes, before it can flush a single stale update.
    for (uint32_t w : victims) {
      (*shared_->control)[w].incarnation.fetch_add(1, std::memory_order_acq_rel);
    }
    if (!PauseAll(&victims)) {
      // Stop arrived mid-pause; the run is over. Leave the barrier broken
      // (victims are dead, re-arming would strand survivors) and un-park.
      Resume(/*rearm=*/false);
      shared_->recovering.store(false, std::memory_order_release);
      return;
    }

    // A crash victim raises dead=1 before wiping its shard and promotes it
    // to 2 once the wipe (and buffer drain) is done. If it was preempted
    // mid-wipe, restoring now would hand rows back to a zombie that is
    // about to clear them — wait for the handshake. Hung workers are
    // marked 3 by us and never write again, so there is nothing to await.
    for (uint32_t w : victims) {
      auto& ctl = (*shared_->control)[w];
      while (ctl.dead.load(std::memory_order_acquire) == 1 &&
             !shared_->stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }

    // All survivors are parked with flushed buffers, so the only state
    // outside the table is on the wire — and the wire is past the cut.
    shared_->bus->Clear();

    const AggKind agg = shared_->kernel->agg;
    Result<CheckpointData> cp = Status::NotFound("no checkpoint store");
    if (store_ != nullptr && store_->HasCheckpoint()) {
      cp = store_->ReadLatest(agg, shared_->table->num_rows());
      if (!cp.ok()) {
        POWERLOG_WARN << "recovery: checkpoint unusable, falling back to "
                         "initial state: "
                      << cp.status().ToString();
      }
    }
    if (SumLike(agg)) {
      // Mass conservation makes a partial patch impossible: a sum row mixes
      // contributions from every shard, so surgically rebuilding only the
      // victim's rows would double-count everything the survivors already
      // absorbed. Roll the whole table back to the latest verified cut.
      if (cp.ok()) {
        (void)shared_->table->Restore(cp->x, cp->delta);
      } else {
        (void)shared_->table->Initialize(*x0_, *delta0_);
      }
    } else {
      // Idempotent aggregates: restore only the victims' shards, then let
      // one re-derivation sweep heal every lost contribution in place.
      for (uint32_t w : victims) {
        for (VertexId v : shared_->partition->OwnedVertices(w)) {
          if (cp.ok()) {
            shared_->table->SetRow(v, cp->x[v], cp->delta[v]);
          } else {
            shared_->table->SetRow(v, (*x0_)[v], (*delta0_)[v]);
          }
        }
      }
      RepropagateAll(shared_);
    }

    // Convergence state derived from the pre-rollback table is now junk.
    shared_->sync_prev_global = std::numeric_limits<double>::quiet_NaN();
    shared_->sync_eps_streak = 0;
    if (shared_->worker_clock != nullptr) {
      // Re-base every superstep clock to a consistent cut: the rollback
      // made the old counts meaningless, and a victim's frozen clock must
      // not leave the survivors' gates computing leads against it. All
      // workers are parked here, so equalising is race-free; using the
      // maximum keeps each clock monotone (a gate that cached its own
      // clock pre-pause can only see its lead shrink).
      int64_t top = 0;
      for (const auto& clock : *shared_->worker_clock) {
        top = std::max(top, clock.load(std::memory_order_acquire));
      }
      for (auto& clock : *shared_->worker_clock) {
        clock.store(top, std::memory_order_release);
      }
    }
    shared_->superstep_work.store(0, std::memory_order_relaxed);
    for (auto& flag : *shared_->idle_flags) {
      flag.store(0, std::memory_order_release);
    }
    shared_->recovery_generation.fetch_add(1, std::memory_order_acq_rel);

    // Respawn a fresh incarnation per victim, carrying the bumped fencing
    // token so it is the shard's sole legitimate owner.
    for (uint32_t w : victims) {
      auto& ctl = (*shared_->control)[w];
      ctl.dead.store(0, std::memory_order_release);
      const int64_t incarnation =
          ctl.incarnation.load(std::memory_order_acquire);
      std::lock_guard<std::mutex> lock(*spawn_mutex_);
      workers_->push_back(
          std::make_unique<Worker>(w, shared_, incarnation));
      Worker* worker = workers_->back().get();
      threads_->emplace_back([worker] { worker->Run(); });
    }
    shared_->recoveries.fetch_add(static_cast<int64_t>(victims.size()),
                                  std::memory_order_relaxed);
    POWERLOG_WARN << "supervisor: recovered " << victims.size()
                  << " worker(s)"
                  << (options.mode == ExecMode::kSync ? " (sync barrier reset)"
                                                      : "");
    Resume();
    shared_->recovering.store(false, std::memory_order_release);
  }

  void PeriodicCheckpoint() {
    trace::SpanGuard ckpt_span(shared_->tracer, "checkpoint.cut");
    const int64_t t0 = NowMicros();
    std::lock_guard<std::mutex> pause_lock(shared_->pause_mutex);
    Status st;
    if (!SumLike(shared_->kernel->agg)) {
      // Quiesce-free live snapshot: min/max restore is idempotent plus a
      // re-derivation sweep, so a cut torn across concurrent combines is
      // still a valid recovery point. Workers never notice.
      st = store_->Write(*shared_->table);
    } else {
      // Sum/count demands mass conservation: every update must land in
      // exactly one snapshot. Park everyone (their buffers force-flush on
      // the way in), absorb what is on the wire into the table, snapshot,
      // resume — a brief stop-the-world cut.
      std::vector<uint32_t> victims;
      if (!PauseAll(&victims)) {
        Resume();
        return;
      }
      if (!victims.empty()) {
        // Someone died while we paused: skip the snapshot, resume, and let
        // the next tick run recovery with priority. (PauseAll already
        // fenced them; Recover's extra bump is harmless.)
        Resume();
        return;
      }
      UpdateBatch scratch;
      for (uint32_t w = 0; w < shared_->options->num_workers; ++w) {
        scratch.clear();
        shared_->bus->ReceiveNow(w, &scratch);
        for (const Update& u : scratch) {
          shared_->table->CombineDelta(u.key, u.value);
        }
      }
      st = store_->Write(*shared_->table);
      Resume();
    }
    shared_->checkpoint_us.fetch_add(NowMicros() - t0,
                                     std::memory_order_relaxed);
    if (st.ok()) {
      shared_->checkpoints_written.fetch_add(1, std::memory_order_relaxed);
    } else {
      POWERLOG_WARN << "checkpoint failed: " << st.ToString();
    }
  }

  SharedState* shared_;
  CheckpointStore* store_;
  const std::vector<double>* x0_;
  const std::vector<double>* delta0_;
  std::mutex* spawn_mutex_;
  std::vector<std::unique_ptr<Worker>>* workers_;
  std::vector<std::thread>* threads_;
  std::vector<int64_t> last_beat_;
  std::vector<int64_t> last_change_us_;
};

}  // namespace

Engine::Engine(const Graph& graph, Kernel kernel, EngineOptions options)
    : graph_(graph), kernel_(std::move(kernel)), options_(std::move(options)) {}

Status Engine::ValidateRunnable() const {
  if (kernel_.agg == AggKind::kMean) {
    return Status::ConditionViolated(
        "mean programs fail the MRA conditions and cannot run on the incremental "
        "engine; use naive evaluation");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("engine needs at least one worker");
  }
  if (graph_.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  if (options_.mode == ExecMode::kStaleSync && options_.staleness < 0) {
    return Status::InvalidArgument("staleness bound must be >= 0");
  }
  return Status::OK();
}

Result<EngineResult> Engine::Run() {
  POWERLOG_RETURN_NOT_OK(ValidateRunnable());
  auto init = ComputeInitialState(kernel_, graph_);
  if (!init.ok()) return init.status();
  return RunWithState(init->x0, init->delta0);
}

Result<EngineResult> Engine::Resume(const WarmStart& warm) {
  POWERLOG_RETURN_NOT_OK(ValidateRunnable());
  const size_t n = graph_.num_vertices();
  if (warm.x.size() != n || warm.delta.size() != n) {
    return Status::InvalidArgument(
        "warm-start columns must have one entry per vertex");
  }
  return RunWithState(warm.x, warm.delta);
}

Result<EngineResult> Engine::RunWithState(const std::vector<double>& x0,
                                          const std::vector<double>& delta0) {
  const VertexId n = graph_.num_vertices();
  auto table = MonoTable::Create(kernel_.agg, n);
  if (!table.ok()) return table.status();
  POWERLOG_RETURN_NOT_OK(table->Initialize(x0, delta0));
  // Frontier compute plane: allocate the dirty bitmap and seed it from ΔX¹
  // before any worker thread exists (enable is not thread-safe).
  table->SetFrontierEnabled(options_.frontier);

  Partitioner partition(options_.partition, n, options_.num_workers);
  MessageBus bus(options_.num_workers, options_.network);
  Barrier barrier(options_.num_workers);
  std::vector<std::atomic<uint8_t>> idle_flags(options_.num_workers);
  for (auto& flag : idle_flags) flag.store(0);

  SharedState shared;
  shared.graph = &graph_;
  // Pre-materialises the transpose on this thread before workers spawn;
  // Graph::Reverse is also call_once-guarded for callers that race it.
  shared.prop = kernel_.uses_in_edges ? &graph_.Reverse() : &graph_;
  shared.kernel = &kernel_;
  shared.table = &*table;
  shared.partition = &partition;
  shared.bus = &bus;
  shared.options = &options_;
  shared.barrier = &barrier;
  shared.idle_flags = &idle_flags;

  // Intra-shard work stealing: one claim shard per worker. Needs the
  // frontier (it steals frontier *words*) and at least one peer.
  std::vector<StealShard> steal_shards;
  std::vector<std::atomic<uint8_t>> sweeping;
  if (options_.steal && options_.frontier && options_.num_workers > 1) {
    steal_shards = std::vector<StealShard>(options_.num_workers);
    shared.steal = &steal_shards;
    // Raised before the workers start so the first superstep's steal poll
    // sees every peer's compute phase as pending (see SharedState).
    sweeping = std::vector<std::atomic<uint8_t>>(options_.num_workers);
    for (auto& flag : sweeping) flag.store(1, std::memory_order_relaxed);
    shared.sweeping = &sweeping;
  }

  // NUMA/affinity plane. Worker pinning is advisory; placement calls are
  // best-effort and degenerate to no-ops on a single-node host (hugepage
  // advice on the CSR arrays still applies there).
  std::vector<int> worker_cpu;
  if (options_.pin) {
    worker_cpu.resize(options_.num_workers);
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      worker_cpu[w] = numa::CpuForWorker(w);
    }
    shared.worker_cpu = &worker_cpu;
    graph_.AdvisePlacement();
    if (shared.prop != &graph_) shared.prop->AdvisePlacement();
    if (numa::NumNodes() > 1) {
      if (options_.partition == Partitioner::Kind::kRange) {
        // Contiguous shards: bind each row range to its pinned owner's node.
        std::vector<std::pair<size_t, size_t>> ranges;
        std::vector<int> nodes;
        for (uint32_t w = 0; w < options_.num_workers; ++w) {
          const std::vector<VertexId> owned = partition.OwnedVertices(w);
          if (owned.empty()) continue;
          ranges.emplace_back(owned.front(), owned.back() + 1);
          nodes.push_back(numa::NodeOfCpu(worker_cpu[w]));
        }
        table->PlaceShards(ranges, nodes);
      } else {
        // Hash shards have no contiguity to exploit: interleave so no
        // single node eats every remote access.
        table->PlaceInterleaved();
      }
    }
  }

  // Fault tolerance wiring. Control blocks are always present (a heartbeat
  // store per control iteration is noise); the injector, checkpoint store,
  // and supervisor thread only exist when configured.
  std::vector<WorkerControl> control(options_.num_workers);
  shared.control = &control;
  std::unique_ptr<FaultInjector> injector;
  if (options_.fault.enabled()) {
    injector =
        std::make_unique<FaultInjector>(options_.fault, options_.num_workers);
    if (options_.fault.bus_chaos()) bus.SetFaultInjector(injector.get());
    shared.injector = injector.get();
  }
  std::unique_ptr<CheckpointStore> store;
  if (!options_.checkpoint_path.empty()) {
    store = std::make_unique<CheckpointStore>(options_.checkpoint_path);
    shared.ckpt = store.get();
  }
  const bool supervise =
      options_.fault.enabled() || options_.heartbeat_timeout_us > 0 ||
      (store != nullptr && options_.checkpoint_interval_us > 0 &&
       options_.mode != ExecMode::kSync);

  // Event tracing: one Tracer for the run; workers, supervisor, and
  // controller register their rings as their threads start. Null (the
  // default) keeps every instrumentation site at one branch, no clock reads.
  // An injected external tracer (the serving plane's query-level tracing)
  // takes the owned tracer's place: `tracer` stays null, so the per-run
  // chrome_trace export and trace.dropped counter below are skipped and the
  // owner exports the merged trace instead.
  std::unique_ptr<trace::Tracer> tracer;
  if (options_.trace) {
    if (options_.external_tracer != nullptr) {
      shared.tracer = options_.external_tracer;
    } else {
      tracer = std::make_unique<trace::Tracer>(options_.trace_ring_events);
      shared.tracer = tracer.get();
    }
    bus.SetTracer(shared.tracer);
  }
  // Stale-synchronous clocks: one completed-superstep counter per worker id
  // (shared across incarnations — a respawn continues its predecessor's
  // clock, re-based to a consistent cut by recovery). The bound is live so
  // the auto-tuner can move it.
  std::vector<std::atomic<int64_t>> worker_clock;
  if (options_.mode == ExecMode::kStaleSync) {
    worker_clock = std::vector<std::atomic<int64_t>>(options_.num_workers);
    for (auto& clock : worker_clock) {
      clock.store(0, std::memory_order_relaxed);
    }
    shared.worker_clock = &worker_clock;
    shared.staleness_bound.store(std::max<int64_t>(options_.staleness, 0),
                                 std::memory_order_relaxed);
  }
  // Straggler attribution: per-worker EMA busy fraction, published at each
  // clock bump. Allocated for the mode unconditionally — the auto-tuner
  // needs identity even when nobody is tracing or scraping.
  std::vector<std::atomic<double>> worker_busy;
  if (options_.mode == ExecMode::kStaleSync) {
    worker_busy = std::vector<std::atomic<double>>(options_.num_workers);
    for (auto& busy : worker_busy) {
      busy.store(0.0, std::memory_order_relaxed);
    }
    shared.worker_busy = &worker_busy;
  }
  // Per-worker mean-β gauges feed the convergence timeline and the live
  // exposition endpoint — and the kStaleSync auto-tuner, whose β-spread
  // input must be populated even when nobody is tracing (the old gate left
  // the gauges unallocated, silently emptying the tuning signal).
  std::vector<std::atomic<double>> worker_beta;
  if (options_.record_trace || options_.trace ||
      options_.exposition != nullptr ||
      options_.mode == ExecMode::kStaleSync) {
    worker_beta = std::vector<std::atomic<double>>(options_.num_workers);
    for (auto& beta : worker_beta) {
      beta.store(options_.buffer.beta, std::memory_order_relaxed);
    }
    shared.worker_beta = &worker_beta;
  }

  metrics::Registry registry;
  if (options_.collect_metrics) {
    // 1us .. ~2s in powers of two: spans instant-delivery scheduling noise
    // up to heavily batched high-latency links.
    bus.SetLatencyHistogram(registry.GetHistogram(
        "bus.delivery_latency_us", metrics::ExponentialBuckets(1.0, 2.0, 22)));
    // 1 .. 128k updates per flush (beta_max is 256k).
    shared.flush_size_hist = registry.GetHistogram(
        "worker.flush_size", metrics::ExponentialBuckets(1.0, 2.0, 18));
  }
  if (options_.delta_stepping > 0.0 && kernel_.agg == AggKind::kMin) {
    double init_min = std::numeric_limits<double>::infinity();
    for (double d : delta0) init_min = std::min(init_min, d);
    shared.bucket_limit.store(init_min + options_.delta_stepping);
  } else {
    shared.bucket_limit.store(std::numeric_limits<double>::infinity());
  }

  Timer timer;
  shared.start_us = NowMicros();

  // Live exposition: attach this run's data sources to the caller-owned
  // server for the duration of Run(). The attachment's destructor detaches
  // them — blocking until any in-flight scrape completes — before these
  // locals die, so a request can never read a dangling run.
  MonoTable* live_table = &*table;
  SharedState* live_shared = &shared;
  ExpositionAttachment exposition_attachment(
      options_.exposition,
      [live_shared, live_table, &bus, &registry, &timer] {
        metrics::MetricsSnapshot snap = registry.Snapshot();
        snap.AddGauge("engine.elapsed_seconds", timer.ElapsedSeconds());
        snap.AddGauge("engine.converged",
                      live_shared->converged.load() ? 1.0 : 0.0);
        snap.AddCounter("engine.supersteps", live_shared->superstep.load());
        snap.AddCounter("engine.harvests", live_shared->harvests.load());
        snap.AddCounter("engine.edge_applications",
                        live_shared->edge_applications.load());
        snap.AddCounter("engine.recoveries", live_shared->recoveries.load());
        snap.AddCounter("engine.checkpoints_written",
                        live_shared->checkpoints_written.load());
        const NetworkStats net = bus.stats();
        snap.AddCounter("bus.messages", net.messages);
        snap.AddCounter("bus.updates", net.updates);
        snap.AddCounter("bus.overflow_sends", net.overflow_sends);
        const BatchPool::Stats pool = bus.pool_stats();
        snap.AddCounter("bus.pool.hits", pool.hits);
        snap.AddCounter("bus.pool.misses", pool.misses);
        snap.AddGauge("bus.inflight_updates",
                      static_cast<double>(bus.InFlightUpdates()));
        snap.AddGauge("frontier.occupancy", live_table->FrontierOccupancy());
        if (live_shared->tracer != nullptr) {
          snap.AddCounter("trace.dropped",
                          live_shared->tracer->TotalDropped());
        }
        if (live_shared->worker_beta != nullptr) {
          for (size_t w = 0; w < live_shared->worker_beta->size(); ++w) {
            snap.AddGauge(StringFormat("worker.%zu.beta", w),
                          (*live_shared->worker_beta)[w].load(
                              std::memory_order_relaxed));
          }
        }
        if (live_shared->worker_clock != nullptr) {
          int64_t min_clock = std::numeric_limits<int64_t>::max();
          int64_t max_clock = 0;
          for (size_t w = 0; w < live_shared->worker_clock->size(); ++w) {
            const int64_t c = (*live_shared->worker_clock)[w].load(
                std::memory_order_acquire);
            min_clock = std::min(min_clock, c);
            max_clock = std::max(max_clock, c);
            snap.AddGauge(StringFormat("worker.%zu.superstep_clock", w),
                          static_cast<double>(c));
          }
          snap.AddGauge("staleness.bound",
                        static_cast<double>(live_shared->staleness_bound.load(
                            std::memory_order_relaxed)));
          snap.AddGauge("staleness.skew",
                        static_cast<double>(max_clock - min_clock));
          snap.AddCounter("staleness.blocks",
                          live_shared->staleness_blocks.load(
                              std::memory_order_relaxed));
        }
        if (live_shared->worker_busy != nullptr) {
          for (size_t w = 0; w < live_shared->worker_busy->size(); ++w) {
            snap.AddGauge(StringFormat("worker.%zu.busy", w),
                          (*live_shared->worker_busy)[w].load(
                              std::memory_order_relaxed));
          }
          snap.AddGauge(
              "straggler.identity",
              static_cast<double>(live_shared->straggler_identity.load(
                  std::memory_order_relaxed)));
        }
        return snap;
      },
      [live_shared]() -> std::string {
        if (live_shared->tracer == nullptr) return std::string();
        return trace::ExportChromeTrace(*live_shared->tracer);
      });
  // Workers live behind unique_ptr so the supervisor can append respawned
  // incarnations without invalidating the ones already running; the spawn
  // mutex serialises those appends against nothing else (the main thread
  // only touches the vectors again after the supervisor has joined).
  std::mutex spawn_mutex;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::thread> worker_threads;
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers.push_back(std::make_unique<Worker>(w, &shared));
  }
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    Worker* worker = workers[w].get();
    worker_threads.emplace_back([worker] { worker->Run(); });
  }

  TerminationController controller(&shared);
  std::thread controller_thread;
  if (options_.mode != ExecMode::kSync) {
    controller_thread = std::thread([&controller] { controller.Run(); });
  }
  // The supervisor's recovery baseline is whatever state this run started
  // from — for Resume that is the warm-start columns, so a recovered worker
  // resumes from the mutation-seeded state, not a cold X⁰.
  Supervisor supervisor(&shared, store.get(), &x0, &delta0, &spawn_mutex,
                        &workers, &worker_threads);
  std::thread supervisor_thread;
  if (supervise) {
    supervisor_thread = std::thread([&supervisor] { supervisor.Run(); });
  }

  if (controller_thread.joinable()) controller_thread.join();
  if (supervisor_thread.joinable()) supervisor_thread.join();
  // After the supervisor joins no new incarnations can appear, so the
  // thread vector is stable from here on.
  for (auto& t : worker_threads) t.join();

  EngineResult result;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.supersteps = shared.superstep.load();
  result.stats.harvests = shared.harvests.load();
  result.stats.edge_applications = shared.edge_applications.load();
  const NetworkStats net = bus.stats();
  result.stats.messages = net.messages;
  result.stats.updates_sent = net.updates;
  result.stats.converged = shared.converged.load();
  result.stats.staleness_blocks = shared.staleness_blocks.load();
  result.stats.staleness_max_lead = shared.staleness_max_lead.load();
  if (options_.mode == ExecMode::kStaleSync) {
    result.stats.staleness_final_bound = shared.staleness_bound.load();
    result.stats.straggler_identity = shared.straggler_identity.load();
    result.stats.staleness_widens_suppressed =
        shared.straggler_suppressed.load();
  }
  result.stats.recoveries = shared.recoveries.load();
  result.stats.checkpoints_written = shared.checkpoints_written.load();
  result.stats.checkpoint_us = shared.checkpoint_us.load();
  if (injector != nullptr) result.stats.faults = injector->stats();
  // Merge per-incarnation counters into one row per worker id: a respawned
  // worker continues its predecessor's line in the breakdown.
  result.stats.workers.resize(options_.num_workers);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    result.stats.workers[w].worker_id = w;
  }
  for (const auto& worker : workers) {
    const WorkerStats& s = worker->stats();
    WorkerStats& m = result.stats.workers[s.worker_id];
    m.harvests += s.harvests;
    m.edge_applications += s.edge_applications;
    m.flushes += s.flushes;
    m.flushed_updates += s.flushed_updates;
    m.inbox_updates += s.inbox_updates;
    m.idle_scans += s.idle_scans;
    m.dense_sweeps += s.dense_sweeps;
    m.sparse_sweeps += s.sparse_sweeps;
    m.frontier_skipped += s.frontier_skipped;
    m.specialized_edges += s.specialized_edges;
    m.vm_edges += s.vm_edges;
    m.vector_edges += s.vector_edges;
    m.scalar_edges += s.scalar_edges;
    m.steal_attempts += s.steal_attempts;
    m.steal_words += s.steal_words;
    m.barrier_wait_us += s.barrier_wait_us;
    m.stall_us += s.stall_us;
    m.inbox_drain_us += s.inbox_drain_us;
  }
  for (const WorkerStats& w : result.stats.workers) {
    result.stats.dense_sweeps += w.dense_sweeps;
    result.stats.sparse_sweeps += w.sparse_sweeps;
    result.stats.frontier_skipped += w.frontier_skipped;
    result.stats.specialized_edges += w.specialized_edges;
    result.stats.vm_edges += w.vm_edges;
    result.stats.vector_edges += w.vector_edges;
    result.stats.scalar_edges += w.scalar_edges;
    result.stats.steal_attempts += w.steal_attempts;
    result.stats.steal_words += w.steal_words;
  }
  result.stats.simd_dispatch =
      options_.simd ? simd::LevelName(simd::ActiveLevel()) : "off";
  if (options_.collect_metrics) {
    result.metrics = registry.Snapshot();
    ExportRunMetrics(result.stats, bus, options_.num_workers, &result.metrics);
    // End-of-run active-set occupancy (≈0 for converged fixpoint runs).
    result.metrics.AddGauge("frontier.occupancy", table->FrontierOccupancy());
    for (const auto& worker : workers) {
      worker->ExportMetrics(&result.metrics);
    }
    if (tracer != nullptr) {
      result.metrics.AddCounter("trace.dropped", tracer->TotalDropped());
    }
    // Convergence timeline as series, so the bench harness's
    // POWERLOG_BENCH_METRICS dump carries the time-resolved view.
    if (options_.record_trace && !shared.trace.empty()) {
      metrics::MetricsSnapshot::Series aggregate, mass, inflight, occupancy;
      metrics::MetricsSnapshot::Series stale_bound, stale_skew;
      aggregate.reserve(shared.trace.size());
      mass.reserve(shared.trace.size());
      inflight.reserve(shared.trace.size());
      occupancy.reserve(shared.trace.size());
      std::vector<metrics::MetricsSnapshot::Series> beta(
          shared.trace.front().worker_beta.size());
      std::vector<metrics::MetricsSnapshot::Series> busy(
          shared.trace.front().worker_busy.size());
      for (const TraceSample& s : shared.trace) {
        aggregate.emplace_back(s.seconds, s.global_aggregate);
        mass.emplace_back(s.seconds, s.pending_mass);
        inflight.emplace_back(s.seconds, s.inflight_updates);
        occupancy.emplace_back(s.seconds, s.frontier_occupancy);
        if (options_.mode == ExecMode::kStaleSync) {
          stale_bound.emplace_back(s.seconds, s.staleness_bound);
          stale_skew.emplace_back(s.seconds, s.staleness_skew);
        }
        for (size_t w = 0; w < beta.size() && w < s.worker_beta.size(); ++w) {
          beta[w].emplace_back(s.seconds, s.worker_beta[w]);
        }
        for (size_t w = 0; w < busy.size() && w < s.worker_busy.size(); ++w) {
          busy[w].emplace_back(s.seconds, s.worker_busy[w]);
        }
      }
      result.metrics.AddSeries("timeline.global_aggregate",
                               std::move(aggregate));
      result.metrics.AddSeries("timeline.pending_mass", std::move(mass));
      result.metrics.AddSeries("timeline.inflight_updates",
                               std::move(inflight));
      result.metrics.AddSeries("timeline.frontier_occupancy",
                               std::move(occupancy));
      if (options_.mode == ExecMode::kStaleSync) {
        result.metrics.AddSeries("timeline.staleness.bound",
                                 std::move(stale_bound));
        result.metrics.AddSeries("timeline.staleness.skew",
                                 std::move(stale_skew));
      }
      for (size_t w = 0; w < beta.size(); ++w) {
        result.metrics.AddSeries(StringFormat("timeline.beta.w%zu", w),
                                 std::move(beta[w]));
      }
      for (size_t w = 0; w < busy.size(); ++w) {
        result.metrics.AddSeries(StringFormat("timeline.worker.w%zu.busy", w),
                                 std::move(busy[w]));
      }
    }
  }
  result.values = table->SnapshotAccumulation();
  result.trace = std::move(shared.trace);
  // Export after every instrumented thread has joined: the rings are
  // quiescent, so the snapshot inside is complete and tear-free.
  if (tracer != nullptr) {
    result.chrome_trace = trace::ExportChromeTrace(*tracer);
  }
  return result;
}

}  // namespace powerlog::runtime
