#include "runtime/engine.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "runtime/termination.h"
#include "runtime/worker.h"

namespace powerlog::runtime {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kSync: return "sync";
    case ExecMode::kAsync: return "async";
    case ExecMode::kAap: return "aap";
    case ExecMode::kSyncAsync: return "sync-async";
  }
  return "?";
}

std::string EngineStats::Summary() const {
  return StringFormat(
      "wall=%.3fs supersteps=%lld harvests=%lld edge_apps=%lld messages=%lld "
      "updates=%lld converged=%s",
      wall_seconds, static_cast<long long>(supersteps),
      static_cast<long long>(harvests), static_cast<long long>(edge_applications),
      static_cast<long long>(messages), static_cast<long long>(updates_sent),
      converged ? "true" : "false");
}

namespace {

/// Flattens the per-worker breakdown, bus pair counts, and run totals into
/// `snap` under stable dotted names (see DESIGN.md "Observability").
void ExportRunMetrics(const EngineStats& stats, const MessageBus& bus,
                      uint32_t num_workers, metrics::MetricsSnapshot* snap) {
  snap->AddCounter("engine.supersteps", stats.supersteps);
  snap->AddCounter("engine.harvests", stats.harvests);
  snap->AddCounter("engine.edge_applications", stats.edge_applications);
  snap->AddCounter("engine.messages", stats.messages);
  snap->AddCounter("engine.updates_sent", stats.updates_sent);
  snap->AddGauge("engine.wall_seconds", stats.wall_seconds);
  snap->AddGauge("engine.converged", stats.converged ? 1.0 : 0.0);
  for (const WorkerStats& w : stats.workers) {
    const std::string prefix = StringFormat("worker.%u.", w.worker_id);
    snap->AddCounter(prefix + "harvests", w.harvests);
    snap->AddCounter(prefix + "edge_applications", w.edge_applications);
    snap->AddCounter(prefix + "flushes", w.flushes);
    snap->AddCounter(prefix + "flushed_updates", w.flushed_updates);
    snap->AddCounter(prefix + "inbox_updates", w.inbox_updates);
    snap->AddCounter(prefix + "idle_scans", w.idle_scans);
    snap->AddCounter(prefix + "barrier_wait_us", w.barrier_wait_us);
    snap->AddCounter(prefix + "stall_us", w.stall_us);
    snap->AddCounter(prefix + "inbox_drain_us", w.inbox_drain_us);
  }
  for (uint32_t from = 0; from < num_workers; ++from) {
    for (uint32_t to = 0; to < num_workers; ++to) {
      const int64_t messages = bus.PairMessages(from, to);
      if (messages == 0) continue;
      snap->AddCounter(StringFormat("bus.messages.w%u_to_w%u", from, to),
                       messages);
      snap->AddCounter(StringFormat("bus.updates.w%u_to_w%u", from, to),
                       bus.PairUpdates(from, to));
    }
  }
}

}  // namespace

Engine::Engine(const Graph& graph, Kernel kernel, EngineOptions options)
    : graph_(graph), kernel_(std::move(kernel)), options_(std::move(options)) {}

Result<EngineResult> Engine::Run() {
  if (kernel_.agg == AggKind::kMean) {
    return Status::ConditionViolated(
        "mean programs fail the MRA conditions and cannot run on the incremental "
        "engine; use naive evaluation");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("engine needs at least one worker");
  }
  const VertexId n = graph_.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");

  auto table = MonoTable::Create(kernel_.agg, n);
  if (!table.ok()) return table.status();
  auto init = ComputeInitialState(kernel_, graph_);
  if (!init.ok()) return init.status();
  POWERLOG_RETURN_NOT_OK(table->Initialize(init->x0, init->delta0));

  Partitioner partition(options_.partition, n, options_.num_workers);
  MessageBus bus(options_.num_workers, options_.network);
  Barrier barrier(options_.num_workers);
  std::vector<std::atomic<uint8_t>> idle_flags(options_.num_workers);
  for (auto& flag : idle_flags) flag.store(0);

  SharedState shared;
  shared.graph = &graph_;
  shared.prop = kernel_.uses_in_edges ? &graph_.Reverse() : &graph_;
  shared.kernel = &kernel_;
  shared.table = &*table;
  shared.partition = &partition;
  shared.bus = &bus;
  shared.options = &options_;
  shared.barrier = &barrier;
  shared.idle_flags = &idle_flags;
  metrics::Registry registry;
  if (options_.collect_metrics) {
    // 1us .. ~2s in powers of two: spans instant-delivery scheduling noise
    // up to heavily batched high-latency links.
    bus.SetLatencyHistogram(registry.GetHistogram(
        "bus.delivery_latency_us", metrics::ExponentialBuckets(1.0, 2.0, 22)));
    // 1 .. 128k updates per flush (beta_max is 256k).
    shared.flush_size_hist = registry.GetHistogram(
        "worker.flush_size", metrics::ExponentialBuckets(1.0, 2.0, 18));
  }
  if (options_.delta_stepping > 0.0 && kernel_.agg == AggKind::kMin) {
    double init_min = std::numeric_limits<double>::infinity();
    for (double d : init->delta0) init_min = std::min(init_min, d);
    shared.bucket_limit.store(init_min + options_.delta_stepping);
  } else {
    shared.bucket_limit.store(std::numeric_limits<double>::infinity());
  }

  Timer timer;
  shared.start_us = NowMicros();
  std::vector<std::thread> threads;
  threads.reserve(options_.num_workers + 1);
  std::vector<Worker> workers;
  workers.reserve(options_.num_workers);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers.emplace_back(w, &shared);
  }
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    threads.emplace_back([&workers, w] { workers[w].Run(); });
  }

  TerminationController controller(&shared);
  if (options_.mode != ExecMode::kSync) {
    threads.emplace_back([&controller] { controller.Run(); });
  }
  for (auto& t : threads) t.join();

  EngineResult result;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.supersteps = shared.superstep.load();
  result.stats.harvests = shared.harvests.load();
  result.stats.edge_applications = shared.edge_applications.load();
  const NetworkStats net = bus.stats();
  result.stats.messages = net.messages;
  result.stats.updates_sent = net.updates;
  result.stats.converged = shared.converged.load();
  result.stats.workers.reserve(workers.size());
  for (const Worker& worker : workers) {
    result.stats.workers.push_back(worker.stats());
  }
  if (options_.collect_metrics) {
    result.metrics = registry.Snapshot();
    ExportRunMetrics(result.stats, bus, options_.num_workers, &result.metrics);
    for (const Worker& worker : workers) {
      worker.ExportMetrics(&result.metrics);
    }
  }
  result.values = table->SnapshotAccumulation();
  result.trace = std::move(shared.trace);
  return result;
}

}  // namespace powerlog::runtime
