#include "runtime/engine.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"
#include "runtime/termination.h"
#include "runtime/worker.h"

namespace powerlog::runtime {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kSync: return "sync";
    case ExecMode::kAsync: return "async";
    case ExecMode::kAap: return "aap";
    case ExecMode::kSyncAsync: return "sync-async";
  }
  return "?";
}

std::string EngineStats::Summary() const {
  return StringFormat(
      "wall=%.3fs supersteps=%lld harvests=%lld edge_apps=%lld messages=%lld "
      "updates=%lld converged=%s",
      wall_seconds, static_cast<long long>(supersteps),
      static_cast<long long>(harvests), static_cast<long long>(edge_applications),
      static_cast<long long>(messages), static_cast<long long>(updates_sent),
      converged ? "true" : "false");
}

Engine::Engine(const Graph& graph, Kernel kernel, EngineOptions options)
    : graph_(graph), kernel_(std::move(kernel)), options_(std::move(options)) {}

Result<EngineResult> Engine::Run() {
  if (kernel_.agg == AggKind::kMean) {
    return Status::ConditionViolated(
        "mean programs fail the MRA conditions and cannot run on the incremental "
        "engine; use naive evaluation");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("engine needs at least one worker");
  }
  const VertexId n = graph_.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");

  auto table = MonoTable::Create(kernel_.agg, n);
  if (!table.ok()) return table.status();
  auto init = ComputeInitialState(kernel_, graph_);
  if (!init.ok()) return init.status();
  POWERLOG_RETURN_NOT_OK(table->Initialize(init->x0, init->delta0));

  Partitioner partition(options_.partition, n, options_.num_workers);
  MessageBus bus(options_.num_workers, options_.network);
  Barrier barrier(options_.num_workers);
  std::vector<std::atomic<uint8_t>> idle_flags(options_.num_workers);
  for (auto& flag : idle_flags) flag.store(0);

  SharedState shared;
  shared.graph = &graph_;
  shared.prop = kernel_.uses_in_edges ? &graph_.Reverse() : &graph_;
  shared.kernel = &kernel_;
  shared.table = &*table;
  shared.partition = &partition;
  shared.bus = &bus;
  shared.options = &options_;
  shared.barrier = &barrier;
  shared.idle_flags = &idle_flags;
  if (options_.delta_stepping > 0.0 && kernel_.agg == AggKind::kMin) {
    double init_min = std::numeric_limits<double>::infinity();
    for (double d : init->delta0) init_min = std::min(init_min, d);
    shared.bucket_limit.store(init_min + options_.delta_stepping);
  } else {
    shared.bucket_limit.store(std::numeric_limits<double>::infinity());
  }

  Timer timer;
  shared.start_us = NowMicros();
  std::vector<std::thread> threads;
  threads.reserve(options_.num_workers + 1);
  std::vector<Worker> workers;
  workers.reserve(options_.num_workers);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers.emplace_back(w, &shared);
  }
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    threads.emplace_back([&workers, w] { workers[w].Run(); });
  }

  TerminationController controller(&shared);
  if (options_.mode != ExecMode::kSync) {
    threads.emplace_back([&controller] { controller.Run(); });
  }
  for (auto& t : threads) t.join();

  EngineResult result;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.supersteps = shared.superstep.load();
  result.stats.harvests = shared.harvests.load();
  result.stats.edge_applications = shared.edge_applications.load();
  const NetworkStats net = bus.stats();
  result.stats.messages = net.messages;
  result.stats.updates_sent = net.updates;
  result.stats.converged = shared.converged.load();
  result.values = table->SnapshotAccumulation();
  result.trace = std::move(shared.trace);
  return result;
}

}  // namespace powerlog::runtime
