// The unified sync-async execution engine (§5.3, Fig. 8): N worker threads
// over MonoTable shards, a master thread for global termination checks, and
// per-pair adaptive message buffers over the simulated network.
//
// Execution modes:
//   kSync      — BSP supersteps with barriers (SociaLite/BigDatalog style).
//   kAsync     — free-running workers, eager per-update messages (Myria style).
//   kAap       — Grape+'s Adaptive Asynchronous Parallel model (fixed-size
//                buffers, in-message-driven pacing), implemented from its
//                paper as §6.5 does.
//   kSyncAsync — the paper's contribution: async execution with per-pair
//                adaptive buffer sizing (β, τ, α=0.8, r=2) plus periodic
//                global termination checks.
//   kStaleSync — stale-synchronous parallel (Das & Zaniolo): workers run
//                supersteps independently but may be at most `s` supersteps
//                ahead of the slowest live worker before blocking on a
//                per-worker superstep clock. `--staleness=N|auto`; auto
//                tunes s online from the convergence-timeline signals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "core/kernel.h"
#include "core/mono_table.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/buffer_policy.h"
#include "runtime/fault.h"
#include "runtime/network.h"

namespace powerlog {
class ExpositionServer;
namespace trace {
class Tracer;
}  // namespace trace
}  // namespace powerlog

namespace powerlog::runtime {

enum class ExecMode { kSync, kAsync, kAap, kSyncAsync, kStaleSync };

const char* ExecModeName(ExecMode mode);

struct EngineOptions {
  uint32_t num_workers = 4;
  ExecMode mode = ExecMode::kSyncAsync;
  NetworkConfig network;

  /// Adaptive buffer parameters (kSyncAsync); β is also the fixed size for
  /// kAap/kFixed flushing.
  BufferPolicy::Params buffer;

  /// §5.4 priority threshold for sum programs: deltas below the threshold
  /// stay cached locally until they accumulate. 0 disables.
  double priority_threshold = 0.0;

  /// §5.4 adaptive variant: harvest a delta only if it is at least a
  /// fraction of the worker's moving-average pending magnitude. Larger
  /// deltas are "more important for the convergence" [67]; deferring the
  /// small ones lets them accumulate before one combined propagation.
  /// Async-family sum programs only.
  bool adaptive_priority = false;

  /// Δ-stepping bucket width for min programs in sync mode (the SSSP
  /// optimisation SociaLite applies, §6.3). 0 disables. Only deltas within
  /// the current bucket are expanded; the bucket advances when exhausted.
  double delta_stepping = 0.0;

  /// kStaleSync staleness bound `s`: a worker may be at most `s` completed
  /// supersteps ahead of the slowest live worker before its superstep loop
  /// blocks (s = 0 degenerates to barrier-free BSP lockstep). Ignored by
  /// the other modes.
  int64_t staleness = 4;

  /// Tune the staleness bound online (`--staleness=auto`): the termination
  /// controller adjusts `s` each check from clock skew, gate blocks, and
  /// the pending-mass EMA — widen when the gate is the bottleneck, tighten
  /// when staleness lets unapplied error pile up. `staleness` is then only
  /// the initial bound.
  bool staleness_auto = false;

  /// Termination. ε-termination (sum/count programs) follows the paper's
  /// criterion in *every* mode: the difference between two consecutive
  /// global aggregation results G_k = Σ accumulation must stay below ε for
  /// two samples in a row (supersteps in sync mode, periodic checks in the
  /// async family). A NaN/±inf global aggregate marks a diverging sum
  /// program and never satisfies the criterion.
  double epsilon_override = -1.0;     ///< <0: use the kernel's epsilon
  int64_t max_supersteps = 100000;    ///< sync-mode cap
  double max_wall_seconds = 60.0;     ///< async-mode hard cap
  int64_t term_check_interval_us = 1000;

  /// Per-superstep coordination overhead of a distributed barrier, paid by
  /// every worker in sync mode (models the 17-node cluster's barrier cost).
  int64_t barrier_overhead_us = 300;

  /// Extra compute burned per F' application, in nanoseconds. 0 = our native
  /// speed; comparator configurations use it to model slower (JVM/Spark)
  /// per-tuple processing. Amortised via a debt accumulator.
  double compute_inflation_ns_per_edge = 0.0;

  /// Environment-noise model: each worker pauses for ~Exp(stall_mean_us)
  /// roughly every Exp(stall_every_us) of wall time (GC pauses, cloud-VM
  /// noise). In async modes the other workers keep computing through a
  /// peer's pause; in sync mode the barrier converts every pause into a
  /// collective straggler wait — the asymmetry §5.3 calls "over-controlled
  /// synchronization". 0 disables (default; correctness tests run clean).
  int64_t stall_every_us = 0;
  int64_t stall_mean_us = 2000;
  uint64_t stall_seed = 0x57A11;

  /// Frontier-driven compute plane: maintain MonoTable's dirty bitmap and
  /// sweep only the active set (dense bit-peek scans near the start,
  /// word-scan sparse worklists once the active fraction drops below 1/16).
  /// On by default; disable as the escape hatch to get the pre-frontier
  /// full-scan sweeps (`--no-frontier` in the CLI). Results are bit-identical
  /// either way — the frontier only skips rows whose pending delta is the
  /// identity, which a full scan would reject anyway.
  bool frontier = true;

  /// SIMD edge kernels: compute F' contributions with the runtime-dispatched
  /// vector span kernels (kernel_simd.h) for specialized scatter shapes.
  /// `--no-simd` is the escape hatch back to the scalar fused loops; results
  /// are bit-identical either way (the kernel_simd.h contract: FMA is off,
  /// vector min/max compare exactly like Aggregator::Improves). The
  /// POWERLOG_SIMD env var further constrains the dispatch level.
  bool simd = true;

  /// NUMA/affinity: pin worker i to CPU CpuForWorker(i), apply hugepage
  /// advice to the CSR arrays, and place MonoTable shards on their owners'
  /// nodes (range partition) or interleave them (hash). Off by default —
  /// pinning is a deployment decision; everything degrades to advisory
  /// no-ops on a single-node host. `--pin` / `--no-pin`.
  bool pin = false;

  /// Intra-shard work stealing: during sparse frontier sweeps, idle workers
  /// steal half the remaining word-range of the slowest active owner via an
  /// atomic claim cursor (see StealShard in worker.h). Requires the
  /// frontier and >1 worker; results stay bit-identical for min/max and
  /// identical-up-to-float-reassociation for sum (same set of deltas, each
  /// harvested exactly once). On by default.
  bool steal = true;

  Partitioner::Kind partition = Partitioner::Kind::kHash;

  /// Checkpointing. `checkpoint_path` is the base name of a ping-pong
  /// CheckpointStore (`<base>.0` / `<base>.1` / `<base>.manifest`); empty
  /// disables snapshots entirely. Sync mode snapshots every
  /// `checkpoint_every` supersteps inside the serial decision section
  /// (naturally quiescent). The async family snapshots every
  /// `checkpoint_interval_us` of wall time from the supervisor thread:
  /// quiesce-free live snapshots for min/max (idempotent restore makes a
  /// torn cut harmless), a brief pause-and-absorb cut for sum/count (mass
  /// conservation requires in-flight updates to land in exactly one
  /// snapshot). 0 disables the respective trigger.
  int64_t checkpoint_every = 0;
  int64_t checkpoint_interval_us = 0;
  std::string checkpoint_path;

  /// Chaos injection: worker crash/hang triggers and bus-level
  /// drop/duplicate/reorder probabilities (see fault.h). Disabled by
  /// default; `fault.enabled()` also turns the supervisor on.
  FaultPlan fault;

  /// Supervisor hang detection: a worker whose heartbeat has not advanced
  /// for this long — while not parked at a barrier or pause point — is
  /// fenced off and respawned from the latest checkpoint. 0 disables hang
  /// detection (explicit crash faults are still detected via the dead
  /// flag). Keep this well above the longest legitimate scan gap or the
  /// supervisor will shoot healthy stragglers.
  int64_t heartbeat_timeout_us = 0;

  /// Record a convergence trace: one timeline sample (seconds, global
  /// aggregate, pending delta mass, in-flight updates, frontier occupancy,
  /// per-worker β) per termination check (async modes) or superstep (sync
  /// mode).
  bool record_trace = false;

  /// Event tracing: give every engine thread (workers, supervisor,
  /// termination controller) a bounded lock-free event ring recording
  /// superstep/sweep/flush/checkpoint/recovery spans and Send→Receive
  /// message flows, exported as Chrome trace-event JSON in
  /// EngineResult::chrome_trace (`--trace-out` in the CLI). Off by default:
  /// every instrumentation site then reduces to one null-pointer branch and
  /// zero clock reads, preserving the clock-free bus fast path.
  bool trace = false;

  /// Events retained per thread ring (rounded up to a power of two). Oldest
  /// events drop on wrap — a trace always holds the newest window.
  uint32_t trace_ring_events = 1u << 16;

  /// External tracer injection (the serving plane's query-level tracing):
  /// when set — and `trace` is true — the engine registers its threads on
  /// this caller-owned tracer instead of creating its own, so serving-plane
  /// request spans and engine/worker spans share one ring registry and one
  /// flow-id space. EngineResult::chrome_trace stays empty; the owner
  /// exports the merged trace. The tracer must outlive Run().
  trace::Tracer* external_tracer = nullptr;

  /// Suffix appended to this run's ring names ("worker0<tag>", ...) when
  /// `external_tracer` is set. Tracer::RegisterCurrentThread reuses rings
  /// by name, and a ring is single-writer — concurrent runs sharing one
  /// tracer MUST carry distinct tags or two threads would write one ring.
  std::string trace_run_tag;

  /// When nonzero (and tracing is active), the supervisor emits one
  /// FlowRecv with this id as the run starts — the receive side of a
  /// caller-emitted FlowSend, drawing the arrow that links a serving
  /// request's span tree to this run's engine/worker spans in Perfetto.
  uint64_t trace_flow_id = 0;

  /// Live HTTP exposition: when set, the engine attaches this run's metrics
  /// (and trace, if enabled) to the server for the duration of Run(), so
  /// `/metrics`, `/metrics.json`, and `/trace` reflect the run in flight.
  /// The server is owned by the caller (`--serve-metrics` in the CLI) and
  /// detached — blocking on in-flight scrapes — before Run() returns.
  ExpositionServer* exposition = nullptr;

  /// Collect the full observability payload: per-worker timing breakdowns
  /// (barrier wait, stall, inbox drain), the bus delivery-latency histogram,
  /// flush-size histogram, per-pair traffic counts, and β trajectories —
  /// exported as EngineResult::metrics. Adds a few clock reads per loop
  /// iteration; off by default so correctness tests and tight benches run
  /// at full speed. Per-worker event *counters* are collected regardless.
  bool collect_metrics = false;
};

/// \brief Per-worker execution breakdown (EngineStats::workers). Counters
/// are always collected; the *_us timings require
/// EngineOptions::collect_metrics and are zero otherwise.
struct WorkerStats {
  uint32_t worker_id = 0;
  int64_t harvests = 0;          ///< MonoTable deltas this worker processed
  int64_t edge_applications = 0; ///< F' applications
  int64_t flushes = 0;           ///< buffer flushes sent to the bus
  int64_t flushed_updates = 0;   ///< updates across those flushes
  int64_t inbox_updates = 0;     ///< updates drained from the inbox
  int64_t idle_scans = 0;        ///< async: full scans that found no work
  int64_t dense_sweeps = 0;      ///< frontier: bit-peek scans over the shard
  int64_t sparse_sweeps = 0;     ///< frontier: word-scan worklist sweeps
  int64_t frontier_skipped = 0;  ///< rows skipped by a clean frontier bit
  int64_t specialized_edges = 0; ///< F' via fused KernelOp loops
  int64_t vm_edges = 0;          ///< F' via the stack-VM fallback
  /// F' lanes computed by the SIMD span kernels. Uniform shapes (F' ignores
  /// w) count here too when SIMD is on: their evaluate-once-route-many form
  /// is already width-independent, so the vector and scalar paths coincide.
  int64_t vector_edges = 0;
  int64_t scalar_edges = 0;      ///< specialized F' via the scalar loops
  int64_t steal_attempts = 0;    ///< successful back-half claims on a peer
  int64_t steal_words = 0;       ///< frontier words claimed from peers
  int64_t barrier_wait_us = 0;   ///< sync: time parked at barriers
  int64_t stall_us = 0;          ///< injected environment-noise pauses
  int64_t inbox_drain_us = 0;    ///< time spent in DrainInbox
};

struct EngineStats {
  double wall_seconds = 0.0;
  int64_t supersteps = 0;        ///< sync mode; termination checks otherwise
  int64_t harvests = 0;          ///< MonoTable deltas processed
  int64_t edge_applications = 0; ///< F' applications
  int64_t messages = 0;
  int64_t updates_sent = 0;
  bool converged = false;

  // Compute plane (totals of the per-worker frontier/specialization
  // counters; see WorkerStats).
  int64_t dense_sweeps = 0;
  int64_t sparse_sweeps = 0;
  int64_t frontier_skipped = 0;
  int64_t specialized_edges = 0;
  int64_t vm_edges = 0;
  int64_t vector_edges = 0;
  int64_t scalar_edges = 0;
  int64_t steal_attempts = 0;
  int64_t steal_words = 0;
  /// The SIMD dispatch level this run executed with ("avx512", "avx2",
  /// "scalar", or
  /// "off" when EngineOptions::simd is false).
  std::string simd_dispatch;

  // Stale-synchronous mode (zero elsewhere).
  int64_t staleness_blocks = 0;    ///< superstep-clock gate waits
  int64_t staleness_max_lead = 0;  ///< max observed fast−slow clock lead
  int64_t staleness_final_bound = 0;  ///< bound at run end (auto-tuned)
  /// Worker id the auto-tuner flagged as a *persistent* straggler: the
  /// minimum-superstep-clock worker (the one the gate parks everyone on)
  /// with a saturated busy fraction, across consecutive checks. -1 when no
  /// worker ever confirmed. Latched at the last confirmed straggler — the
  /// drain phase dissolving the signal does not erase the attribution. A
  /// flagged straggler means the skew is a placement problem — rebalance,
  /// don't widen.
  int64_t straggler_identity = -1;
  /// Widening decisions the auto-tuner suppressed because the observed skew
  /// was attributed to the flagged persistent straggler (widening the bound
  /// cannot help a worker that is busy 100% of the time).
  int64_t staleness_widens_suppressed = 0;

  // Fault tolerance.
  int64_t recoveries = 0;           ///< workers fenced + respawned
  int64_t checkpoints_written = 0;  ///< snapshots published to the store
  int64_t checkpoint_us = 0;        ///< wall time spent writing snapshots
  FaultStats faults;                ///< chaos actually injected

  /// Per-worker breakdown; counters are merged across incarnations of the
  /// same worker id (a respawned worker continues its predecessor's row).
  std::vector<WorkerStats> workers;

  std::string Summary() const;
};

/// \brief One convergence-timeline sample: the time-resolved view of the
/// BSP↔async interpolation (global progress vs. staleness in flight).
struct TraceSample {
  double seconds;
  double global_aggregate;  ///< Σ of finite accumulation entries
  double pending_mass;      ///< Σ|ΔX| (sum) or #improving deltas (min/max)
  double inflight_updates = 0.0;     ///< bus updates sent but not yet applied
  double frontier_occupancy = 0.0;   ///< fraction of rows with a dirty bit
  double staleness_bound = 0.0;      ///< kStaleSync: current bound s
  double staleness_skew = 0.0;       ///< kStaleSync: max−min superstep clock
  std::vector<double> worker_beta;   ///< mean adaptive β per worker
  /// kStaleSync straggler attribution: EMA-smoothed busy (sweep+flush, i.e.
  /// non-park) fraction of each worker's superstep wall time. Empty in the
  /// other modes.
  std::vector<double> worker_busy;
};

struct EngineResult {
  std::vector<double> values;
  EngineStats stats;
  std::vector<TraceSample> trace;  ///< non-empty iff options.record_trace
  /// Full observability payload (counters, histograms, β-trajectory and
  /// timeline.* series); empty unless options.collect_metrics. Serialise
  /// with metrics.ToJson().
  metrics::MetricsSnapshot metrics;
  /// Chrome trace-event JSON (Perfetto-loadable); empty unless
  /// options.trace.
  std::string chrome_trace;
};

/// \brief Warm-start state for Engine::Resume (ROADMAP item 2): a restored
/// accumulation column and the seeded ΔX to drain. Rows whose delta is the
/// aggregate identity carry no work — with the frontier on they are never
/// even swept, which is what makes small-batch re-convergence cheap.
struct WarmStart {
  std::vector<double> x;      ///< accumulation column to restore
  std::vector<double> delta;  ///< seeded intermediate column (ΔX)
};

/// \brief One evaluation run of a kernel on a graph under the chosen mode.
class Engine {
 public:
  Engine(const Graph& graph, Kernel kernel, EngineOptions options);

  /// Executes to convergence (or cap) and returns the final accumulation
  /// column plus statistics. May be called repeatedly (state resets).
  Result<EngineResult> Run();

  /// Re-convergence entry point: restores `warm.x` into the MonoTable,
  /// seeds `warm.delta` through the normal combining path, and runs the
  /// same worker/termination planes to a new fixpoint. The caller computes
  /// the warm state (reconverge.h plans it from a mutation batch); both
  /// vectors must have one entry per vertex of the engine's graph.
  Result<EngineResult> Resume(const WarmStart& warm);

 private:
  Status ValidateRunnable() const;
  Result<EngineResult> RunWithState(const std::vector<double>& x0,
                                    const std::vector<double>& delta0);

  const Graph& graph_;
  Kernel kernel_;
  EngineOptions options_;
};

}  // namespace powerlog::runtime
