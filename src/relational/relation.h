// Generic tuple storage for the relational Datalog substrate.
//
// PowerLog is built on a Datalog engine (SociaLite); the vertex kernels in
// core/ are its specialised fast path. This module is the general path: a
// deduplicating tuple store with hash indexes, used by the bottom-up
// relational evaluator (rel_eval.h) — and, in tests, as an independent
// oracle for the kernel-based evaluators.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"

namespace powerlog::relational {

/// Datalog values are doubles; vertex ids up to 2^53 are exact.
using Value = double;
using Tuple = std::vector<Value>;

/// Bit-exact hash of a tuple (NaN-free domains assumed).
uint64_t HashTuple(const Tuple& tuple);

/// \brief A set-semantics relation of fixed arity with lazy per-column
/// hash indexes.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Inserts under set semantics; returns true if the tuple was new.
  /// Fails on arity mismatch.
  Result<bool> Insert(Tuple tuple);

  /// True if the exact tuple is present.
  bool Contains(const Tuple& tuple) const;

  /// Indices of tuples whose `column` equals `v`. Builds the column index on
  /// first use. The returned reference is invalidated by Insert.
  const std::vector<uint32_t>& Probe(size_t column, Value v) const;

  /// Removes all tuples (indexes reset).
  void Clear();

  /// Deterministic content fingerprint (order-independent).
  uint64_t Fingerprint() const;

  std::string ToString(size_t limit = 20) const;

 private:
  struct TupleRef {
    const Relation* relation;
    uint32_t index;
  };

  size_t arity_;
  std::vector<Tuple> tuples_;
  /// Dedup set over tuple indices (hashes the stored tuple).
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;
  /// Lazy per-column indexes: column -> (value bits -> tuple indices).
  mutable std::unordered_map<size_t, std::unordered_map<uint64_t, std::vector<uint32_t>>>
      indexes_;
  static const std::vector<uint32_t> kEmpty;
};

/// \brief A named collection of relations (the EDB + derived IDB).
class Database {
 public:
  /// Creates (or returns) the relation `name` with the given arity; errors
  /// if it exists with a different arity.
  Result<Relation*> GetOrCreate(const std::string& name, size_t arity);

  /// Lookup; null if absent.
  Relation* Find(const std::string& name);
  const Relation* Find(const std::string& name) const;

  bool Has(const std::string& name) const { return relations_.count(name) > 0; }

 private:
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace powerlog::relational
