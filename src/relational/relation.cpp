#include "relational/relation.h"

#include <cstring>

#include "common/random.h"
#include "common/string_util.h"

namespace powerlog::relational {

const std::vector<uint32_t> Relation::kEmpty;

namespace {

uint64_t Bits(Value v) {
  // Normalise -0.0 to +0.0 so they hash identically.
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t HashTuple(const Tuple& tuple) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (Value v : tuple) {
    h ^= Mix64(Bits(v)) + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

Result<bool> Relation::Insert(Tuple tuple) {
  if (tuple.size() != arity_) {
    return Status::InvalidArgument(
        StringFormat("arity mismatch: relation has %zu columns, tuple has %zu",
                     arity_, tuple.size()));
  }
  const uint64_t h = HashTuple(tuple);
  auto it = dedup_.find(h);
  if (it != dedup_.end()) {
    for (uint32_t idx : it->second) {
      if (tuples_[idx] == tuple) return false;
    }
  }
  const uint32_t index = static_cast<uint32_t>(tuples_.size());
  // Maintain any already-built column indexes.
  for (auto& [column, index_map] : indexes_) {
    index_map[Bits(tuple[column])].push_back(index);
  }
  dedup_[h].push_back(index);
  tuples_.push_back(std::move(tuple));
  return true;
}

bool Relation::Contains(const Tuple& tuple) const {
  auto it = dedup_.find(HashTuple(tuple));
  if (it == dedup_.end()) return false;
  for (uint32_t idx : it->second) {
    if (tuples_[idx] == tuple) return true;
  }
  return false;
}

const std::vector<uint32_t>& Relation::Probe(size_t column, Value v) const {
  auto [it, inserted] = indexes_.try_emplace(column);
  if (inserted) {
    for (uint32_t i = 0; i < tuples_.size(); ++i) {
      it->second[Bits(tuples_[i][column])].push_back(i);
    }
  }
  auto hit = it->second.find(Bits(v));
  return hit == it->second.end() ? kEmpty : hit->second;
}

void Relation::Clear() {
  tuples_.clear();
  dedup_.clear();
  indexes_.clear();
}

uint64_t Relation::Fingerprint() const {
  // Order-independent: XOR of tuple hashes (set semantics make this sound).
  uint64_t fp = 0;
  for (const Tuple& t : tuples_) fp ^= Mix64(HashTuple(t));
  return fp;
}

std::string Relation::ToString(size_t limit) const {
  std::string out = StringFormat("relation/%zu {%zu tuples}", arity_, size());
  size_t shown = 0;
  for (const Tuple& t : tuples_) {
    if (shown++ >= limit) {
      out += " ...";
      break;
    }
    out += " (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) out += ",";
      out += StringFormat("%g", t[i]);
    }
    out += ")";
  }
  return out;
}

Result<Relation*> Database::GetOrCreate(const std::string& name, size_t arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return Status::InvalidArgument(
          StringFormat("relation %s exists with arity %zu, requested %zu",
                       name.c_str(), it->second.arity(), arity));
    }
    return &it->second;
  }
  auto [inserted, ok] = relations_.emplace(name, Relation(arity));
  (void)ok;
  return &inserted->second;
}

Relation* Database::Find(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

}  // namespace powerlog::relational
