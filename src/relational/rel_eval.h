// Bottom-up relational evaluation of recursive aggregate Datalog programs.
//
// This is the general execution path a Datalog system (SociaLite, the
// paper's base) uses: rules become joins over tuple relations, aggregates
// become group-bys, and the recursive rule iterates to fixpoint (naive
// evaluation, Eq. 2). It makes no use of the vertex kernels or MonoTable —
// which is exactly why tests use it as an independent oracle for them.
#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "datalog/ast.h"
#include "graph/graph.h"
#include "relational/relation.h"

namespace powerlog::relational {

struct RelEvalOptions {
  int64_t max_iterations = 100000;  ///< system-level cap (§2.2)
  double epsilon_override = -1.0;   ///< <0: use the program's {agg[Δx] < ε}
  /// Semi-naive/delta evaluation (Eq. 3 / Eq. 4 at the relation level): the
  /// recursive literal reads the per-iteration delta relation instead of the
  /// full one, self bodies become accumulation, and constant bodies seed the
  /// first delta. This is the execution mode the generated incremental
  /// equivalents (checker/rewrite.h) are written for.
  bool semi_naive = false;
};

struct RelEvalResult {
  /// Final (key, value) facts of the recursive predicate.
  std::map<double, double> values;
  int64_t iterations = 0;
  bool converged = false;
};

/// \brief Compiled form of one program for relational evaluation.
class RelationalEvaluator {
 public:
  /// Parses and analyses `source` (same fragment as the kernel path).
  static Result<RelationalEvaluator> Create(const std::string& source);

  /// Evaluates against `graph` (which provides the EDB: the edge relation
  /// named by @edges plus node/1).
  Result<RelEvalResult> Evaluate(const Graph& graph,
                                 const RelEvalOptions& options = {}) const;

  const std::string& head_predicate() const { return head_predicate_; }

 private:
  RelationalEvaluator() = default;

  datalog::Program program_;
  std::string head_predicate_;
  std::string edges_predicate_ = "edge";
  size_t edges_arity_ = 3;
  std::map<std::string, double> binds_;
  int64_t max_iterations_ = 0;  // from @maxiters; 0 = none

  // Recursive rule decomposition.
  size_t recursive_rule_index_ = 0;
  int iter_pos_ = -1;
  int key_pos_ = -1;
  int agg_pos_ = -1;
  datalog::AggKind aggregate_ = datalog::AggKind::kSum;
  std::string agg_var_;
  /// True when the aggregate input variable is introduced by a body
  /// predicate (degree-style true tuple counting) rather than an assignment
  /// (accumulator semantics, §2.3).
  bool count_tuples_ = false;

  double epsilon_ = 0.0;
  bool has_epsilon_ = false;
};

}  // namespace powerlog::relational
