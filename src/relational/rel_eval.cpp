#include "relational/rel_eval.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

#include "common/string_util.h"
#include "datalog/expr_compiler.h"
#include "datalog/parser.h"

namespace powerlog::relational {

using datalog::AggKind;
using datalog::BodyLiteral;
using datalog::CmpOp;
using datalog::Expr;
using datalog::ExprKind;
using datalog::ExprPtr;
using datalog::HeadArg;
using datalog::Program;
using datalog::Rule;
using datalog::RuleBody;

namespace {

using Env = std::map<std::string, double>;

bool IsPlainVar(const ExprPtr& e) { return e && e->kind == ExprKind::kVar; }
bool IsNumber(const ExprPtr& e) { return e && e->kind == ExprKind::kNumber; }

std::optional<std::string> MatchIterationSuccessor(const ExprPtr& e) {
  if (!e || e->kind != ExprKind::kBinary || e->bin_op != datalog::BinOp::kAdd) {
    return std::nullopt;
  }
  if (IsPlainVar(e->lhs) && IsNumber(e->rhs) && e->rhs->number_value == 1.0) {
    return e->lhs->var;
  }
  if (IsPlainVar(e->rhs) && IsNumber(e->lhs) && e->lhs->number_value == 1.0) {
    return e->rhs->var;
  }
  return std::nullopt;
}

bool BodyReferences(const Rule& rule, const std::string& name) {
  for (const RuleBody& body : rule.bodies) {
    for (const BodyLiteral& lit : body.literals) {
      if (lit.kind == BodyLiteral::Kind::kPredicate && lit.predicate == name) {
        return true;
      }
    }
  }
  return false;
}

/// Group-by fold state supporting all five aggregates.
struct GroupState {
  double acc = 0.0;
  int64_t count = 0;
  void Add(AggKind kind, double v) {
    if (count == 0) {
      acc = v;
    } else {
      switch (kind) {
        case AggKind::kMin: acc = std::min(acc, v); break;
        case AggKind::kMax: acc = std::max(acc, v); break;
        case AggKind::kSum:
        case AggKind::kCount:
        case AggKind::kMean: acc += v; break;
      }
    }
    ++count;
  }
  double Finish(AggKind kind) const {
    return kind == AggKind::kMean ? acc / static_cast<double>(count) : acc;
  }
};

/// \brief One pass of conjunctive-query evaluation over a body, calling
/// `emit` for every satisfying variable binding.
class BodyMatcher {
 public:
  BodyMatcher(const Database* db, const std::string& head_predicate,
              const Relation* current, int iter_pos, int key_pos, int agg_pos,
              const std::string& iter_var)
      : db_(db),
        head_predicate_(head_predicate),
        current_(current),
        iter_pos_(iter_pos),
        key_pos_(key_pos),
        agg_pos_(agg_pos),
        iter_var_(iter_var) {}

  Status Match(const RuleBody& body, Env env,
               const std::function<Status(const Env&)>& emit) {
    return Step(body, 0, std::move(env), emit);
  }

 private:
  /// Positional column mapping for a literal of the recursive predicate:
  /// the iteration argument is dropped, key -> column 0, value -> column 1.
  Result<std::vector<int>> RecursiveColumns(const BodyLiteral& lit) const {
    std::vector<int> cols(lit.args.size(), -1);
    for (size_t i = 0; i < lit.args.size(); ++i) {
      const int pos = static_cast<int>(i);
      if (pos == iter_pos_) {
        if (!IsPlainVar(lit.args[i]) || lit.args[i]->var != iter_var_) {
          return Status::NotSupported("recursive literal iteration arg mismatch");
        }
        cols[i] = -1;  // dropped column
      } else if (pos == key_pos_) {
        cols[i] = 0;
      } else if (pos == agg_pos_) {
        cols[i] = 1;
      } else {
        return Status::NotSupported("unexpected recursive literal argument");
      }
    }
    return cols;
  }

  Status Step(const RuleBody& body, size_t index, Env env,
              const std::function<Status(const Env&)>& emit) {
    if (index == body.literals.size()) return emit(env);
    const BodyLiteral& lit = body.literals[index];

    if (lit.kind == BodyLiteral::Kind::kComparison) {
      // Assignment: single unbound variable on the left.
      if (lit.cmp_op == CmpOp::kEq && IsPlainVar(lit.lhs) &&
          env.count(lit.lhs->var) == 0) {
        auto v = datalog::EvalConstExpr(lit.rhs, env);
        if (!v.ok()) return v.status();
        env[lit.lhs->var] = *v;
        return Step(body, index + 1, std::move(env), emit);
      }
      // Filter: both sides must evaluate.
      auto l = datalog::EvalConstExpr(lit.lhs, env);
      if (!l.ok()) return l.status();
      auto r = datalog::EvalConstExpr(lit.rhs, env);
      if (!r.ok()) return r.status();
      bool pass = false;
      switch (lit.cmp_op) {
        case CmpOp::kEq: pass = *l == *r; break;
        case CmpOp::kLt: pass = *l < *r; break;
        case CmpOp::kLe: pass = *l <= *r; break;
        case CmpOp::kGt: pass = *l > *r; break;
        case CmpOp::kGe: pass = *l >= *r; break;
      }
      if (!pass) return Status::OK();
      return Step(body, index + 1, std::move(env), emit);
    }

    // Predicate literal.
    const Relation* relation = nullptr;
    std::vector<int> columns;  // arg index -> relation column (-1 = dropped)
    if (lit.predicate == head_predicate_) {
      relation = current_;
      auto cols = RecursiveColumns(lit);
      if (!cols.ok()) return cols.status();
      columns = std::move(cols).ValueOrDie();
    } else {
      relation = db_->Find(lit.predicate);
      if (relation == nullptr) {
        return Status::NotFound("unknown predicate: " + lit.predicate);
      }
      if (relation->arity() != lit.args.size()) {
        return Status::InvalidArgument(
            StringFormat("predicate %s used with %zu args, relation has %zu",
                         lit.predicate.c_str(), lit.args.size(),
                         relation->arity()));
      }
      columns.resize(lit.args.size());
      for (size_t i = 0; i < lit.args.size(); ++i) {
        columns[i] = static_cast<int>(i);
      }
    }

    // Classify arguments: constants and bound vars constrain; pick a probe.
    int probe_column = -1;
    double probe_value = 0.0;
    for (size_t i = 0; i < lit.args.size(); ++i) {
      if (columns[i] < 0) continue;
      const ExprPtr& arg = lit.args[i];
      if (arg->kind == ExprKind::kWildcard) continue;
      double bound_value;
      bool have = false;
      if (IsNumber(arg)) {
        bound_value = arg->number_value;
        have = true;
      } else if (IsPlainVar(arg)) {
        auto it = env.find(arg->var);
        if (it != env.end()) {
          bound_value = it->second;
          have = true;
        }
      } else {
        return Status::NotSupported("complex expressions in predicate arguments");
      }
      if (have && probe_column < 0) {
        probe_column = columns[i];
        probe_value = bound_value;
      }
    }

    auto try_tuple = [&](const Tuple& tuple) -> Status {
      Env extended = env;
      for (size_t i = 0; i < lit.args.size(); ++i) {
        if (columns[i] < 0) continue;
        const ExprPtr& arg = lit.args[i];
        const double cell = tuple[static_cast<size_t>(columns[i])];
        if (arg->kind == ExprKind::kWildcard) continue;
        if (IsNumber(arg)) {
          if (arg->number_value != cell) return Status::OK();
          continue;
        }
        auto [it, inserted] = extended.emplace(arg->var, cell);
        if (!inserted && it->second != cell) return Status::OK();
      }
      return Step(body, index + 1, std::move(extended), emit);
    };

    if (probe_column >= 0) {
      for (uint32_t idx :
           relation->Probe(static_cast<size_t>(probe_column), probe_value)) {
        POWERLOG_RETURN_NOT_OK(try_tuple(relation->tuples()[idx]));
      }
    } else {
      for (const Tuple& tuple : relation->tuples()) {
        POWERLOG_RETURN_NOT_OK(try_tuple(tuple));
      }
    }
    return Status::OK();
  }

  const Database* db_;
  const std::string& head_predicate_;
  const Relation* current_;
  int iter_pos_;
  int key_pos_;
  int agg_pos_;
  const std::string& iter_var_;
};

}  // namespace

Result<RelationalEvaluator> RelationalEvaluator::Create(const std::string& source) {
  auto parsed = datalog::Parse(source);
  if (!parsed.ok()) return parsed.status();
  RelationalEvaluator ev;
  ev.program_ = std::move(parsed).ValueOrDie();

  // Annotations (only those the relational path needs).
  for (const auto& [key, toks] : ev.program_.annotations) {
    if (key == "edges" && !toks.empty()) {
      ev.edges_predicate_ = toks[0];
    } else if (key == "bind" && toks.size() == 3) {
      auto v = ParseDouble(toks[2]);
      if (v.ok()) ev.binds_[toks[0]] = *v;
    } else if (key == "maxiters" && !toks.empty()) {
      auto v = ParseInt64(toks[0]);
      if (v.ok()) ev.max_iterations_ = *v;
    }
  }

  // Edge relation arity: from the first use in any rule body.
  bool arity_known = false;
  for (const Rule& rule : ev.program_.rules) {
    for (const RuleBody& body : rule.bodies) {
      for (const BodyLiteral& lit : body.literals) {
        if (lit.kind != BodyLiteral::Kind::kPredicate ||
            lit.predicate != ev.edges_predicate_) {
          continue;
        }
        if (arity_known && ev.edges_arity_ != lit.args.size()) {
          return Status::NotSupported("mixed edge-predicate arities");
        }
        ev.edges_arity_ = lit.args.size();
        arity_known = true;
      }
    }
  }

  // Locate the recursive rule.
  const Rule* recursive = nullptr;
  for (size_t i = 0; i < ev.program_.rules.size(); ++i) {
    const Rule& rule = ev.program_.rules[i];
    if (BodyReferences(rule, rule.head.predicate)) {
      if (recursive != nullptr) {
        return Status::NotSupported("multiple recursive rules");
      }
      recursive = &rule;
      ev.recursive_rule_index_ = i;
    }
  }
  if (recursive == nullptr) {
    return Status::InvalidArgument("program has no recursive rule");
  }
  ev.head_predicate_ = recursive->head.predicate;

  // Head decomposition: iteration / key / aggregate positions.
  for (size_t i = 0; i < recursive->head.args.size(); ++i) {
    const HeadArg& arg = recursive->head.args[i];
    if (arg.aggregate) {
      if (ev.agg_pos_ >= 0) return Status::NotSupported("multiple aggregates");
      ev.agg_pos_ = static_cast<int>(i);
      ev.aggregate_ = *arg.aggregate;
      if (!IsPlainVar(arg.agg_input)) {
        return Status::NotSupported("aggregate input must be a variable");
      }
      ev.agg_var_ = arg.agg_input->var;
    } else if (MatchIterationSuccessor(arg.expr)) {
      ev.iter_pos_ = static_cast<int>(i);
    } else if (IsPlainVar(arg.expr)) {
      if (ev.key_pos_ >= 0) return Status::NotSupported("multi-key group-by");
      ev.key_pos_ = static_cast<int>(i);
    } else {
      return Status::NotSupported("unsupported head argument");
    }
  }
  if (ev.agg_pos_ < 0 || ev.key_pos_ < 0) {
    return Status::InvalidArgument("head needs a key and an aggregate");
  }

  // count semantics (§2.3): true tuple counting when the aggregate input is
  // introduced by a body predicate; accumulator (sum-of-counts) otherwise.
  if (ev.aggregate_ == AggKind::kCount) {
    ev.count_tuples_ = false;
    for (const RuleBody& body : recursive->bodies) {
      for (const BodyLiteral& lit : body.literals) {
        if (lit.kind != BodyLiteral::Kind::kPredicate) continue;
        for (const ExprPtr& arg : lit.args) {
          if (IsPlainVar(arg) && arg->var == ev.agg_var_) ev.count_tuples_ = true;
        }
      }
      for (const BodyLiteral& lit : body.literals) {
        if (lit.kind == BodyLiteral::Kind::kComparison &&
            IsPlainVar(lit.lhs) && lit.lhs->var == ev.agg_var_) {
          ev.count_tuples_ = false;  // assignment wins
        }
      }
    }
  }

  if (recursive->termination) {
    ev.has_epsilon_ = true;
    ev.epsilon_ = recursive->termination->epsilon;
  }
  return ev;
}

Result<RelEvalResult> RelationalEvaluator::Evaluate(
    const Graph& graph, const RelEvalOptions& options) const {
  const Rule& recursive = program_.rules[recursive_rule_index_];
  std::string iter_var;
  if (iter_pos_ >= 0) {
    iter_var = *MatchIterationSuccessor(
        recursive.head.args[static_cast<size_t>(iter_pos_)].expr);
  }

  // ---- EDB ----
  Database db;
  auto edges = db.GetOrCreate(edges_predicate_, edges_arity_);
  if (!edges.ok()) return edges.status();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Edge& e : graph.OutEdges(v)) {
      Tuple t{static_cast<double>(v), static_cast<double>(e.dst)};
      if (edges_arity_ == 3) t.push_back(e.weight);
      POWERLOG_RETURN_NOT_OK((*edges)->Insert(std::move(t)).status());
    }
  }
  auto node = db.GetOrCreate("node", 1);
  if (!node.ok()) return node.status();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    POWERLOG_RETURN_NOT_OK((*node)->Insert({static_cast<double>(v)}).status());
  }

  Relation current(2);  // (key, value) facts of the recursive predicate
  BodyMatcher matcher(&db, head_predicate_, &current, iter_pos_, key_pos_,
                      agg_pos_, iter_var);

  // Evaluates one rule (non-recursive or one pass of the recursive rule).
  // For aggregate heads the results land in `groups`; for plain heads the
  // tuples go into the target relation directly.
  auto eval_rule = [&](const Rule& rule, Relation* target,
                       std::map<double, GroupState>* groups,
                       AggKind agg, bool count_tuples) -> Result<bool> {
    bool changed = false;
    for (const RuleBody& body : rule.bodies) {
      Env seed(binds_.begin(), binds_.end());
      Status st = matcher.Match(body, seed, [&](const Env& env) -> Status {
        // Project the head under this binding.
        std::vector<double> values;
        values.reserve(rule.head.args.size());
        for (size_t i = 0; i < rule.head.args.size(); ++i) {
          const HeadArg& arg = rule.head.args[i];
          if (rule.head.predicate == head_predicate_ &&
              static_cast<int>(i) == iter_pos_) {
            // The iteration index (i+1) is erased from the stored relation;
            // its variable is intentionally never bound.
            values.push_back(0.0);
            continue;
          }
          if (arg.aggregate) {
            auto v = count_tuples ? Result<double>(1.0)
                                  : datalog::EvalConstExpr(arg.agg_input, env);
            if (!v.ok()) return v.status();
            values.push_back(*v);
          } else {
            auto v = datalog::EvalConstExpr(arg.expr, env);
            if (!v.ok()) return v.status();
            values.push_back(*v);
          }
        }
        if (groups != nullptr) {
          // Aggregate rule: (key, agg input).
          double key = 0.0, input = 0.0;
          for (size_t i = 0; i < rule.head.args.size(); ++i) {
            if (rule.head.args[i].aggregate) {
              input = values[i];
            } else if (static_cast<int>(i) == key_pos_ ||
                       (rule.head.predicate != head_predicate_ && i == 0)) {
              key = values[i];
            }
          }
          (*groups)[key].Add(agg, input);
          return Status::OK();
        }
        auto inserted = target->Insert(Tuple(values.begin(), values.end()));
        if (!inserted.ok()) return inserted.status();
        changed = changed || *inserted;
        return Status::OK();
      });
      POWERLOG_RETURN_NOT_OK(st);
    }
    return changed;
  };

  // ---- Non-recursive rules: saturate (handles inter-rule dependencies) ----
  std::vector<const Rule*> aux_rules;    // other predicates
  std::vector<const Rule*> init_rules;   // head predicate initialisation
  for (size_t i = 0; i < program_.rules.size(); ++i) {
    if (i == recursive_rule_index_) continue;
    const Rule& rule = program_.rules[i];
    (rule.head.predicate == head_predicate_ ? init_rules : aux_rules)
        .push_back(&rule);
  }
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (const Rule* rule : aux_rules) {
      const bool is_agg = std::any_of(
          rule->head.args.begin(), rule->head.args.end(),
          [](const HeadArg& a) { return a.aggregate.has_value(); });
      if (is_agg) {
        // e.g. degree(X, count[Y]) :- edge(X, Y): group and materialise.
        std::map<double, GroupState> groups;
        AggKind agg = AggKind::kCount;
        for (const HeadArg& a : rule->head.args) {
          if (a.aggregate) agg = *a.aggregate;
        }
        // Aux counts always count tuples (join-variable inputs).
        auto r = eval_rule(*rule, nullptr, &groups, agg, agg == AggKind::kCount);
        if (!r.ok()) return r.status();
        auto rel = db.GetOrCreate(rule->head.predicate, rule->head.args.size());
        if (!rel.ok()) return rel.status();
        for (const auto& [key, state] : groups) {
          auto inserted = (*rel)->Insert({key, state.Finish(agg)});
          if (!inserted.ok()) return inserted.status();
          changed = changed || *inserted;
        }
        continue;
      }
      auto rel = db.GetOrCreate(rule->head.predicate, rule->head.args.size());
      if (!rel.ok()) return rel.status();
      auto r = eval_rule(*rule, *rel, nullptr, AggKind::kSum, false);
      if (!r.ok()) return r.status();
      changed = changed || *r;
    }
    if (!changed) break;
  }

  // ---- Initialise the recursive predicate (X⁰). ----
  // Iteration-indexed init rules (rank(0,X,r)) contribute only here;
  // non-indexed ones are re-derived every iteration as part of F.
  auto derive_init = [&](std::map<double, GroupState>* groups) -> Status {
    for (const Rule* rule : init_rules) {
      // Strip an explicit iteration-0 argument if present.
      Rule stripped = *rule;
      if (iter_pos_ >= 0 &&
          stripped.head.args.size() == recursive.head.args.size()) {
        stripped.head.args.erase(stripped.head.args.begin() + iter_pos_);
      }
      // Plain projection into groups: first arg key, second value.
      Env seed(binds_.begin(), binds_.end());
      POWERLOG_RETURN_NOT_OK(
          matcher.Match(rule->bodies.empty() ? RuleBody{} : rule->bodies[0], seed,
                        [&](const Env& env) -> Status {
                          std::vector<double> vals;
                          for (const HeadArg& arg : stripped.head.args) {
                            auto v = datalog::EvalConstExpr(arg.expr, env);
                            if (!v.ok()) return v.status();
                            vals.push_back(*v);
                          }
                          if (vals.size() != 2) {
                            return Status::NotSupported(
                                "init rule must bind (key, value)");
                          }
                          (*groups)[vals[0]].Add(aggregate_, vals[1]);
                          return Status::OK();
                        }));
    }
    return Status::OK();
  };

  const bool init_indexed =
      iter_pos_ >= 0 &&
      std::any_of(init_rules.begin(), init_rules.end(), [&](const Rule* r) {
        return r->head.args.size() == recursive.head.args.size() &&
               IsNumber(r->head.args[static_cast<size_t>(iter_pos_)].expr);
      });

  {
    std::map<double, GroupState> groups;
    POWERLOG_RETURN_NOT_OK(derive_init(&groups));
    for (const auto& [key, state] : groups) {
      POWERLOG_RETURN_NOT_OK(
          current.Insert({key, state.Finish(aggregate_)}).status());
    }
  }

  RelEvalResult result;
  int64_t cap = options.max_iterations;
  if (max_iterations_ > 0 && max_iterations_ < cap) cap = max_iterations_;
  const double epsilon = options.epsilon_override >= 0
                             ? options.epsilon_override
                             : (has_epsilon_ ? epsilon_ : 0.0);

  // ---- Semi-naive / delta recursion (Eq. 3/4 at the relation level). ----
  if (options.semi_naive) {
    if (aggregate_ == AggKind::kMean) {
      return Status::ConditionViolated(
          "mean programs cannot be evaluated incrementally");
    }
    const bool rel_ordered =
        aggregate_ == AggKind::kMin || aggregate_ == AggKind::kMax;
    const std::string head_key_var =
        recursive.head.args[static_cast<size_t>(key_pos_)].expr->var;
    auto is_self_body = [&](const RuleBody& body) {
      // A self body (Program 2.b's "ry = r") reads the key's own previous
      // value: its recursive literal carries the head key variable in the
      // key position. Under delta execution it *is* the accumulation.
      for (const BodyLiteral& lit : body.literals) {
        if (lit.kind != BodyLiteral::Kind::kPredicate ||
            lit.predicate != head_predicate_) {
          continue;
        }
        return key_pos_ >= 0 &&
               static_cast<size_t>(key_pos_) < lit.args.size() &&
               IsPlainVar(lit.args[static_cast<size_t>(key_pos_)]) &&
               lit.args[static_cast<size_t>(key_pos_)]->var == head_key_var;
      }
      return false;
    };
    auto has_recursive_literal = [&](const RuleBody& body) {
      for (const BodyLiteral& lit : body.literals) {
        if (lit.kind == BodyLiteral::Kind::kPredicate &&
            lit.predicate == head_predicate_) {
          return true;
        }
      }
      return false;
    };

    auto combine = [&](double a, double b) {
      switch (aggregate_) {
        case AggKind::kMin: return std::min(a, b);
        case AggKind::kMax: return std::max(a, b);
        default: return a + b;
      }
    };
    auto improves = [&](double current_value, double candidate) {
      switch (aggregate_) {
        case AggKind::kMin: return candidate < current_value;
        case AggKind::kMax: return candidate > current_value;
        default: return candidate != 0.0;
      }
    };

    // Accumulated values X and the first delta ΔX¹: the iteration-0 facts
    // plus the constant bodies (which, under delta execution, fire once).
    // For sum programs this assumes the delta form: the init facts are
    // themselves ΔX¹ (true for generated 2.b programs and for zero inits);
    // a nonzero iteration-indexed init in an original-form sum program
    // would need the G⁻ derivation the kernel path performs.
    std::map<double, double> x;
    for (const Tuple& t : current.tuples()) x[t[0]] = t[1];
    std::map<double, double> delta = x;
    if (!rel_ordered) {
      std::erase_if(delta, [](const auto& kv) { return kv.second == 0.0; });
    }
    {
      std::map<double, GroupState> seed_groups;
      Relation empty_delta(2);
      BodyMatcher seed_matcher(&db, head_predicate_, &empty_delta, iter_pos_,
                               key_pos_, agg_pos_, iter_var);
      for (const RuleBody& body : recursive.bodies) {
        if (has_recursive_literal(body)) continue;
        Env seed(binds_.begin(), binds_.end());
        POWERLOG_RETURN_NOT_OK(seed_matcher.Match(
            body, seed, [&](const Env& env) -> Status {
              double key_value = 0.0, input = 0.0;
              for (size_t i = 0; i < recursive.head.args.size(); ++i) {
                const auto& arg = recursive.head.args[i];
                if (arg.aggregate) {
                  auto v = datalog::EvalConstExpr(arg.agg_input, env);
                  if (!v.ok()) return v.status();
                  input = *v;
                } else if (static_cast<int>(i) == key_pos_) {
                  auto v = datalog::EvalConstExpr(arg.expr, env);
                  if (!v.ok()) return v.status();
                  key_value = *v;
                }
              }
              seed_groups[key_value].Add(aggregate_, input);
              return Status::OK();
            }));
      }
      for (const auto& [key_value, state] : seed_groups) {
        const double v = state.Finish(aggregate_);
        auto it = x.find(key_value);
        if (it == x.end()) {
          x[key_value] = v;
          delta[key_value] = v;
        } else if (rel_ordered) {
          if (improves(it->second, v)) {
            it->second = v;
            delta[key_value] = v;
          }
        } else {
          it->second += v;
          delta[key_value] += v;
        }
      }
    }

    while (result.iterations < cap && !delta.empty()) {
      ++result.iterations;
      Relation delta_rel(2);
      for (const auto& [key_value, v] : delta) {
        POWERLOG_RETURN_NOT_OK(delta_rel.Insert({key_value, v}).status());
      }
      BodyMatcher delta_matcher(&db, head_predicate_, &delta_rel, iter_pos_,
                                key_pos_, agg_pos_, iter_var);
      std::map<double, GroupState> groups;
      for (const RuleBody& body : recursive.bodies) {
        if (!has_recursive_literal(body) || is_self_body(body)) continue;
        Env seed(binds_.begin(), binds_.end());
        POWERLOG_RETURN_NOT_OK(delta_matcher.Match(
            body, seed, [&](const Env& env) -> Status {
              double key_value = 0.0, input = 0.0;
              for (size_t i = 0; i < recursive.head.args.size(); ++i) {
                const auto& arg = recursive.head.args[i];
                if (arg.aggregate) {
                  auto v = count_tuples_
                               ? Result<double>(1.0)
                               : datalog::EvalConstExpr(arg.agg_input, env);
                  if (!v.ok()) return v.status();
                  input = *v;
                } else if (static_cast<int>(i) == key_pos_) {
                  auto v = datalog::EvalConstExpr(arg.expr, env);
                  if (!v.ok()) return v.status();
                  key_value = *v;
                }
              }
              groups[key_value].Add(aggregate_, input);
              return Status::OK();
            }));
      }
      // Merge: X_k = G(X_{k-1} ∪ ΔX_k); the new delta keeps only what
      // actually changed (ordered) or is nonzero (sum).
      std::map<double, double> next_delta;
      double mass = 0.0;
      for (const auto& [key_value, state] : groups) {
        const double v = state.Finish(aggregate_);
        auto it = x.find(key_value);
        if (it == x.end()) {
          x[key_value] = v;
          next_delta[key_value] = v;
          mass += rel_ordered ? 1.0 : std::abs(v);
        } else if (rel_ordered) {
          if (improves(it->second, v)) {
            it->second = v;
            next_delta[key_value] = v;
            mass += 1.0;
          }
        } else if (v != 0.0) {
          it->second = combine(it->second, v);
          next_delta[key_value] = v;
          mass += std::abs(v);
        }
      }
      delta = std::move(next_delta);
      if (delta.empty() || (epsilon > 0.0 && mass < epsilon)) {
        result.converged = true;
        break;
      }
    }
    if (delta.empty()) result.converged = true;
    result.values = std::move(x);
    return result;
  }

  // ---- Naive recursion (Eq. 2). ----

  for (int64_t k = 0; k < cap; ++k) {
    std::map<double, GroupState> groups;
    auto r = eval_rule(recursive, nullptr, &groups, aggregate_, count_tuples_);
    if (!r.ok()) return r.status();
    if (!init_indexed) POWERLOG_RETURN_NOT_OK(derive_init(&groups));
    ++result.iterations;

    // Build X_{k+1} and diff against X_k.
    Relation next(2);
    double diff = 0.0;
    std::map<double, double> prev;
    for (const Tuple& t : current.tuples()) prev[t[0]] = t[1];
    for (const auto& [key, state] : groups) {
      const double value = state.Finish(aggregate_);
      POWERLOG_RETURN_NOT_OK(next.Insert({key, value}).status());
      auto it = prev.find(key);
      if (it == prev.end()) {
        diff += 1.0 + std::abs(value);
      } else {
        diff += std::abs(value - it->second);
        prev.erase(it);
      }
    }
    diff += static_cast<double>(prev.size());  // facts that disappeared
    current = std::move(next);
    if (diff == 0.0 || (epsilon > 0.0 && diff < epsilon)) {
      result.converged = true;
      break;
    }
  }

  for (const Tuple& t : current.tuples()) result.values[t[0]] = t[1];
  return result;
}

}  // namespace powerlog::relational
